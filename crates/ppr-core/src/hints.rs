//! Packet-level view of SoftPHY hints and the threshold rule.
//!
//! `ppr-phy` produces one hint per decoded unit; PP-ARQ consumes a whole
//! packet's worth at once. [`PacketHints`] binds the two: raw hints plus a
//! threshold `η`, yielding the good/bad labeling of §3.2 that the
//! run-length representation and the chunking DP operate on.
//!
//! The *unit* is deliberately unspecified (codewords in the paper's PHY,
//! bytes in the PP-ARQ implementation here); everything downstream is
//! unit-agnostic, honoring the SoftPHY abstraction boundary (§3.3).

/// A packet's hints with its threshold: the input to PP-ARQ planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketHints {
    hints: Vec<u8>,
    eta: u8,
}

impl PacketHints {
    /// Wraps raw per-unit hints with a threshold `η`.
    pub fn from_raw(hints: &[u8], eta: u8) -> Self {
        PacketHints {
            hints: hints.to_vec(),
            eta,
        }
    }

    /// The threshold in use.
    pub fn eta(&self) -> u8 {
        self.eta
    }

    /// Number of units in the packet.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// True for an empty packet.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }

    /// Raw hint access.
    pub fn raw(&self) -> &[u8] {
        &self.hints
    }

    /// The §3.2 threshold rule: unit `i` is good ⇔ `hint ≤ η`.
    pub fn is_good(&self, i: usize) -> bool {
        self.hints[i] <= self.eta
    }

    /// Good/bad labels for the whole packet.
    pub fn labels(&self) -> Vec<bool> {
        self.hints.iter().map(|&h| h <= self.eta).collect()
    }

    /// Number of units labeled bad.
    pub fn bad_count(&self) -> usize {
        self.hints.iter().filter(|&&h| h > self.eta).count()
    }

    /// True when every unit is labeled good (nothing to retransmit —
    /// though misses may still lurk; the ARQ's checksum pass catches
    /// them).
    pub fn all_good(&self) -> bool {
        self.bad_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_apply_threshold() {
        let h = PacketHints::from_raw(&[0, 6, 7, 32], 6);
        assert_eq!(h.labels(), vec![true, true, false, false]);
        assert_eq!(h.bad_count(), 2);
        assert!(!h.all_good());
        assert!(h.is_good(1));
        assert!(!h.is_good(2));
    }

    #[test]
    fn all_good_and_empty() {
        assert!(PacketHints::from_raw(&[0, 1, 2], 6).all_good());
        let empty = PacketHints::from_raw(&[], 6);
        assert!(empty.all_good());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn eta_zero_is_strictest() {
        let h = PacketHints::from_raw(&[0, 1], 0);
        assert_eq!(h.labels(), vec![true, false]);
        assert_eq!(h.eta(), 0);
    }
}
