//! The PP-ARQ chunking dynamic program (Eqs. 4–5, §5.1).
//!
//! Given the run-length representation of a packet, the receiver chooses
//! which *chunks* — groups of consecutive bad runs together with the good
//! runs trapped between them — to request for retransmission. Describing
//! many small chunks costs feedback bits; merging them into one big chunk
//! re-sends good symbols. The DP balances the two:
//!
//! * Singleton chunk `c_{i,i}` (Eq. 4):
//!   `C = log S + log λᵇᵢ + min(λᵍᵢ, λ_C)`
//!   (offset + length description, plus sending the following good run or
//!   its checksum, whichever is smaller).
//! * Interval `c_{i,j}` (Eq. 5): either keep it intact —
//!   `2 log S + Σ_{l=i}^{j-1} λᵍ_l` (describe one big range, re-send the
//!   interior good symbols) — or split it at the cheapest point `k` into
//!   `C(c_{i,k}) + C(c_{k+1,j})`.
//!
//! Memoized bottom-up over intervals: `O(L³)` time, `O(L²)` space, as the
//! paper states. [`plan_chunks_brute`] is an exponential reference
//! implementation used by the property tests to pin optimality.

use crate::runs::{RunLengths, UnitRange};

/// Cost model translating run lengths (in units) into feedback bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Packet size `S` in units (for `log S` offset/length descriptors).
    pub packet_units: usize,
    /// Bits per unit (8 when units are bytes, 4 when codewords).
    pub bits_per_unit: f64,
    /// Checksum length `λ_C` in bits (16 for the CRC-16 used here).
    pub checksum_bits: f64,
}

impl CostModel {
    /// Model for a packet of `packet_units` byte units.
    pub fn bytes(packet_units: usize) -> Self {
        CostModel {
            packet_units,
            bits_per_unit: 8.0,
            checksum_bits: 16.0,
        }
    }

    /// `log₂ S`, the bits to describe an offset (or length) in the packet.
    fn log_s(&self) -> f64 {
        (self.packet_units.max(2) as f64).log2()
    }

    /// Eq. 4: cost of a singleton chunk.
    fn singleton(&self, bad_len: usize, good_len: usize) -> f64 {
        self.log_s()
            + (bad_len.max(2) as f64).log2()
            + (good_len as f64 * self.bits_per_unit).min(self.checksum_bits)
    }

    /// Eq. 5 first branch: cost of keeping `c_{i,j}` as one chunk.
    fn merged(&self, interior_good_units: usize) -> f64 {
        2.0 * self.log_s() + interior_good_units as f64 * self.bits_per_unit
    }
}

/// The planner's output: the chunk ranges to request, in packet order,
/// and the optimal cost in feedback bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlan {
    /// Requested retransmission ranges (unit coordinates). Every bad run
    /// is covered by exactly one chunk; chunks never overlap and are
    /// sorted.
    pub chunks: Vec<UnitRange>,
    /// The DP-optimal feedback cost in bits (`C(c_{1,L})`).
    pub cost_bits: f64,
}

impl ChunkPlan {
    /// An empty plan (nothing to retransmit).
    pub fn empty() -> Self {
        ChunkPlan {
            chunks: Vec::new(),
            cost_bits: 0.0,
        }
    }

    /// Total units requested for retransmission.
    pub fn requested_units(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

/// Runs the `O(L³)` interval DP and reconstructs the optimal chunk set.
pub fn plan_chunks(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    let l = rl.l();
    if l == 0 {
        return ChunkPlan::empty();
    }
    // cost_table[i][j], choice[i][j] for i ≤ j; j index shifted by i.
    let mut cost_table = vec![vec![0.0f64; l]; l];
    let mut split = vec![vec![usize::MAX; l]; l]; // usize::MAX = merged

    for (i, row) in cost_table.iter_mut().enumerate() {
        row[i] = cost.singleton(rl.pairs[i].bad_len, rl.pairs[i].good_len);
    }
    for span in 2..=l {
        for i in 0..=(l - span) {
            let j = i + span - 1;
            let mut best = cost.merged(rl.interior_good(i, j));
            let mut best_split = usize::MAX;
            for k in i..j {
                let c = cost_table[i][k] + cost_table[k + 1][j];
                if c < best {
                    best = c;
                    best_split = k;
                }
            }
            cost_table[i][j] = best;
            split[i][j] = best_split;
        }
    }

    let mut chunks = Vec::new();
    reconstruct(rl, &split, 0, l - 1, &mut chunks);
    chunks.sort_by_key(|c| c.start);
    ChunkPlan {
        chunks,
        cost_bits: cost_table[0][l - 1],
    }
}

fn reconstruct(
    rl: &RunLengths,
    split: &[Vec<usize>],
    i: usize,
    j: usize,
    out: &mut Vec<UnitRange>,
) {
    if i == j || split[i][j] == usize::MAX {
        out.push(rl.chunk_range(i, j));
        return;
    }
    let k = split[i][j];
    reconstruct(rl, split, i, k, out);
    reconstruct(rl, split, k + 1, j, out);
}

/// Exponential-time reference: evaluates every partition of the bad runs
/// into consecutive groups and returns the best. For property tests only
/// (`L ≤ ~16`).
pub fn plan_chunks_brute(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    let l = rl.l();
    if l == 0 {
        return ChunkPlan::empty();
    }
    assert!(l <= 20, "brute force is exponential; got L={l}");
    let mut best_cost = f64::INFINITY;
    let mut best_mask = 0u32;
    // Bit b of mask set ⇒ boundary between bad runs b and b+1.
    for mask in 0..(1u32 << (l - 1)) {
        let mut total = 0.0;
        let mut start = 0usize;
        for b in 0..l {
            let is_end = b == l - 1 || mask & (1 << b) != 0;
            if is_end {
                total += group_cost(rl, cost, start, b);
                start = b + 1;
            }
        }
        if total < best_cost {
            best_cost = total;
            best_mask = mask;
        }
    }
    let mut chunks = Vec::new();
    let mut start = 0usize;
    for b in 0..l {
        let is_end = b == l - 1 || best_mask & (1 << b) != 0;
        if is_end {
            chunks.push(rl.chunk_range(start, b));
            start = b + 1;
        }
    }
    ChunkPlan {
        chunks,
        cost_bits: best_cost,
    }
}

/// Cost of one group in a partition: Eq. 4 for singletons, the merged
/// branch of Eq. 5 otherwise.
fn group_cost(rl: &RunLengths, cost: &CostModel, i: usize, j: usize) -> f64 {
    if i == j {
        cost.singleton(rl.pairs[i].bad_len, rl.pairs[i].good_len)
    } else {
        cost.merged(rl.interior_good(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == 'g').collect()
    }

    fn plan(s: &str) -> ChunkPlan {
        let rl = RunLengths::from_labels(&labels(s));
        plan_chunks(&rl, &CostModel::bytes(s.len()))
    }

    #[test]
    fn all_good_plans_nothing() {
        let p = plan("gggggggg");
        assert!(p.chunks.is_empty());
        assert_eq!(p.cost_bits, 0.0);
    }

    #[test]
    fn single_bad_run_is_one_chunk() {
        let p = plan("gggbbbgg");
        assert_eq!(p.chunks, vec![UnitRange::new(3, 6)]);
        assert!(p.cost_bits > 0.0);
    }

    #[test]
    fn nearby_bad_runs_merge() {
        // Two bad runs separated by ONE good byte: describing two chunks
        // costs ~2(logS + logλ) + checksum ≥ 2·log(1000)·… while merging
        // costs 2 logS + 8 bits. Merge must win.
        let mut s = String::new();
        s.push_str(&"g".repeat(400));
        s.push_str("bbb");
        s.push('g');
        s.push_str("bbb");
        s.push_str(&"g".repeat(593));
        let p = plan(&s);
        assert_eq!(p.chunks.len(), 1);
        assert_eq!(p.chunks[0], UnitRange::new(400, 407));
    }

    #[test]
    fn distant_bad_runs_stay_separate() {
        // Two bad runs separated by 300 good bytes (2400 bits): merging
        // would re-send all of them; separate description is far cheaper.
        let mut s = String::new();
        s.push_str(&"g".repeat(100));
        s.push_str("bbbb");
        s.push_str(&"g".repeat(300));
        s.push_str("bb");
        s.push_str(&"g".repeat(594));
        let p = plan(&s);
        assert_eq!(p.chunks.len(), 2);
        assert_eq!(p.chunks[0], UnitRange::new(100, 104));
        assert_eq!(p.chunks[1], UnitRange::new(404, 406));
    }

    #[test]
    fn chunks_cover_all_bad_runs_and_never_overlap() {
        for s in [
            "bgbgbgbgbgbgbg",
            "bbbbgggbbgggggbggggggggggbbbbbbgggggb",
            "gbggggggggggggggggggggggggggggggggggb",
        ] {
            let rl = RunLengths::from_labels(&labels(s));
            let p = plan_chunks(&rl, &CostModel::bytes(s.len()));
            for pair in &rl.pairs {
                let covered = p
                    .chunks
                    .iter()
                    .filter(|c| c.covers(pair.bad_start) && c.covers(pair.bad().end - 1))
                    .count();
                assert_eq!(covered, 1, "bad run {pair:?} in {s}");
            }
            for w in p.chunks.windows(2) {
                assert!(w[0].end <= w[1].start, "overlap in {s}");
            }
            // Chunks start and end on bad runs (never waste edges).
            let lab = labels(s);
            for c in &p.chunks {
                assert!(!lab[c.start], "chunk starts on good unit in {s}");
                assert!(!lab[c.end - 1], "chunk ends on good unit in {s}");
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_fixed_cases() {
        for s in [
            "bgb",
            "bbggbbggbb",
            "bgggggggggggggggggggggb",
            "bgbgbgbggggggggbgbgb",
            "gggbbgbbgggggbgggggggggggggggbbbbbgb",
        ] {
            let rl = RunLengths::from_labels(&labels(s));
            let cost = CostModel::bytes(s.len().max(64));
            let dp = plan_chunks(&rl, &cost);
            let brute = plan_chunks_brute(&rl, &cost);
            assert!(
                (dp.cost_bits - brute.cost_bits).abs() < 1e-9,
                "cost mismatch on {s}: dp {} brute {}",
                dp.cost_bits,
                brute.cost_bits
            );
            assert_eq!(dp.chunks, brute.chunks, "chunk mismatch on {s}");
        }
    }

    #[test]
    fn doc_example_single_burst() {
        // The facade doc-test scenario: 64 units, bad burst at 28..36.
        let mut hints = [0u8; 64];
        for h in &mut hints[28..36] {
            *h = 9;
        }
        let labels: Vec<bool> = hints.iter().map(|&h| h <= 6).collect();
        let rl = RunLengths::from_labels(&labels);
        let p = plan_chunks(&rl, &CostModel::bytes(64));
        assert_eq!(p.chunks.len(), 1);
        assert!(p.chunks[0].covers(30));
        assert_eq!(p.chunks[0], UnitRange::new(28, 36));
    }

    #[test]
    fn requested_units_accounting() {
        let p = plan("gggbbgggggggggggggggggggggggggggbbbg");
        assert_eq!(
            p.requested_units(),
            p.chunks.iter().map(|c| c.len()).sum::<usize>()
        );
        assert!(p.requested_units() >= 5);
    }
}
