//! The PP-ARQ chunking dynamic program (Eqs. 4–5, §5.1).
//!
//! Given the run-length representation of a packet, the receiver chooses
//! which *chunks* — groups of consecutive bad runs together with the good
//! runs trapped between them — to request for retransmission. Describing
//! many small chunks costs feedback bits; merging them into one big chunk
//! re-sends good symbols. The DP balances the two:
//!
//! * Singleton chunk `c_{i,i}` (Eq. 4):
//!   `C = log S + log λᵇᵢ + min(λᵍᵢ, λ_C)`
//!   (offset + length description, plus sending the following good run or
//!   its checksum, whichever is smaller).
//! * Interval `c_{i,j}` (Eq. 5): either keep it intact —
//!   `2 log S + Σ_{l=i}^{j-1} λᵍ_l` (describe one big range, re-send the
//!   interior good symbols) — or split it at the cheapest point `k` into
//!   `C(c_{i,k}) + C(c_{k+1,j})`.
//!
//! The paper memoizes this bottom-up over intervals: `O(L³)` time,
//! `O(L²)` space. That formulation is kept verbatim as
//! [`plan_chunks_interval`] — the pinned reference the property tests and
//! the bench ladder compare against — but it is **not** what the
//! production path runs, because the recurrence has far more structure
//! than the interval form exposes:
//!
//! 1. **The optimum is a partition.** Every split tree bottoms out in a
//!    set of maximal unsplit intervals, so the search space is exactly
//!    the partitions of the `L` bad runs into consecutive groups (what
//!    [`plan_chunks_brute`] enumerates), and the interval DP collapses to
//!    the 1-D partition DP `best[j] = min_i best[i-1] + w(i, j)`.
//! 2. **The off-diagonal weight is separable.** With `P[i]` the prefix
//!    sum of good-run lengths, a multi-run group costs
//!    `w(i, j) = 2 log S + (P[j] − P[i])·bpu` — a function of `i` plus a
//!    function of `j`. Separable weights satisfy the concave Monge /
//!    total-monotonicity condition *with equality*, so the usual
//!    Knuth/SMAWK machinery degenerates further: the minimum over `i` is
//!    a single running prefix-minimum of `best[i-1] − P[i]·bpu`, and the
//!    whole DP is `O(L)` time, `O(L)` space. The `min(λᵍ, λ_C)` kink of
//!    Eq. 4 lives only on the diagonal (`i = j`, the singleton chunk), so
//!    it is one extra candidate per cell, not a Monge violation inside
//!    the minimization. (The kink *does* break the quadrangle inequality
//!    for the combined weight — `2 log S ≤ singleton(j)` can fail — which
//!    is why a generic SMAWK over the combined `w` would be unsound;
//!    [`plan_chunks_monotone`] cross-checks itself against
//!    [`plan_chunks_quadratic`] under `debug_assertions` instead of
//!    assuming the inequality.)
//!
//! Plans are *identical* to the interval DP's, not merely cost-equal.
//! The interval reconstruction prefers the unsplit interval on cost ties
//! and the smallest split point `k` otherwise; unfolding that recursion
//! shows the partition it selects is the greedy **smallest-boundary**
//! optimum: scanning left to right, each group is the shortest prefix
//! group consistent with global optimality, except that a single group
//! running to the end wins any tie. Both new planners reconstruct with
//! exactly that rule from a suffix-cost array (`subopt[s]` = optimal cost
//! of runs `s..L`), so all three agree chunk-for-chunk — pinned by the
//! tie-inducing property tests in `tests/properties.rs`.
//!
//! **Selection runs in fixed point.** Summing the same group costs in
//! different associations (the interval DP's split tree vs a suffix
//! fold) perturbs `f64` totals by an ulp, which is enough to flip an
//! exact cost tie into an implementation-dependent strict comparison. So
//! every planner scores partitions in Q23.40 fixed point: each atomic
//! cost (`log S`, `log λᵇ`, `bpu`, `λ_C`) is quantized once, products
//! with integer run lengths and all sums are then exact, and integer
//! addition is associative — three different evaluation orders, one
//! answer. `cost_bits` is the fixed-point optimum converted back to
//! `f64` (within `≈ L · 2⁻⁴¹` bits of the exact real value), identical
//! across planners. The `no-float` lint (`cargo run -p ppr-lint`)
//! enforces this mechanically: the scoring and reconstruction spans
//! below are declared `region(no-float)` and may not contain float
//! tokens, so a stray `f64` cannot creep back into selection.
//!
//! The per-frame entry points take a caller-provided [`ChunkScratch`] so
//! the hot feedback path ([`crate::arq::ReceiverPacket::make_feedback`])
//! performs no table allocation per frame; `plan_chunks` remains the
//! allocating convenience wrapper and now runs the `O(L)` planner.

use crate::runs::{RunLengths, UnitRange};

/// Cost model translating run lengths (in units) into feedback bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Packet size `S` in units (for `log S` offset/length descriptors).
    pub packet_units: usize,
    /// Bits per unit (8 when units are bytes, 4 when codewords).
    pub bits_per_unit: f64,
    /// Checksum length `λ_C` in bits (16 for the CRC-16 used here).
    pub checksum_bits: f64,
}

/// Fractional bits of the planners' fixed-point cost representation
/// (Q23.40: exact for dyadic cost models, `< 5·10⁻¹³` bits of rounding
/// per irrational atom otherwise).
const FX_SHIFT: u32 = 40;

/// Quantizes one atomic cost (bits) to fixed point.
fn fx(bits: f64) -> i64 {
    (bits * (1i64 << FX_SHIFT) as f64).round() as i64
}

impl CostModel {
    /// Model for a packet of `packet_units` byte units.
    pub fn bytes(packet_units: usize) -> Self {
        CostModel {
            packet_units,
            bits_per_unit: 8.0,
            checksum_bits: 16.0,
        }
    }

    /// `log₂ S`, the bits to describe an offset (or length) in the packet.
    fn log_s(&self) -> f64 {
        (self.packet_units.max(2) as f64).log2()
    }

    /// Eq. 4 in `f64` — only [`plan_chunks_brute`] scores with this, so
    /// the exponential reference stays arithmetic-independent of the
    /// fixed-point planners it checks.
    fn singleton(&self, bad_len: usize, good_len: usize) -> f64 {
        self.log_s()
            + (bad_len.max(2) as f64).log2()
            + (good_len as f64 * self.bits_per_unit).min(self.checksum_bits)
    }

    /// Eq. 5 first branch in `f64` (see [`Self::singleton`]).
    fn merged(&self, interior_good_units: usize) -> f64 {
        2.0 * self.log_s() + interior_good_units as f64 * self.bits_per_unit
    }

    /// The quantized atoms every planner scores partitions with.
    fn fixed(&self) -> FxCost {
        FxCost {
            log_s: fx(self.log_s()),
            bits_per_unit: fx(self.bits_per_unit),
            checksum_bits: fx(self.checksum_bits),
        }
    }
}

/// The cost model's atoms in Q23.40 fixed point (see the module docs on
/// why selection must not run in `f64`).
#[derive(Debug, Clone, Copy)]
struct FxCost {
    log_s: i64,
    bits_per_unit: i64,
    checksum_bits: i64,
}

impl FxCost {
    /// Converts a fixed-point total back to bits (the only approved
    /// float boundary on the way *out* of the planners).
    fn to_bits(total: i64) -> f64 {
        total as f64 / (1i64 << FX_SHIFT) as f64
    }

    // ppr-lint: region(no-float) begin — Eq. 4/5 scoring must stay in
    // Q23.40 integer arithmetic: one stray float sum re-introduces the
    // association-order tie flips PR 5 removed.
    /// Eq. 4: cost of a singleton chunk.
    fn singleton(&self, bad_len: usize, good_len: usize) -> i64 {
        self.log_s
            // ppr-lint: allow(no-float) — quantizing the log λᵇ atom is
            // the approved float boundary on the way in: a pure function
            // of the integer run length, identical across planners.
            + fx((bad_len.max(2) as f64).log2())
            + (good_len as i64 * self.bits_per_unit).min(self.checksum_bits)
    }

    /// Eq. 5 first branch: cost of keeping `c_{i,j}` as one chunk.
    /// Written as `2 log S + (P[j] − P[i])·bpu`; the per-unit product is
    /// exact, so the weight is exactly separable in `i` and `j`.
    fn merged(&self, interior_good_units: usize) -> i64 {
        2 * self.log_s + interior_good_units as i64 * self.bits_per_unit
    }
    // ppr-lint: region(no-float) end
}

/// The planner's output: the chunk ranges to request, in packet order,
/// and the optimal cost in feedback bits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkPlan {
    /// Requested retransmission ranges (unit coordinates). Every bad run
    /// is covered by exactly one chunk; chunks never overlap and are
    /// sorted.
    pub chunks: Vec<UnitRange>,
    /// The DP-optimal feedback cost in bits (`C(c_{1,L})`).
    pub cost_bits: f64,
}

impl ChunkPlan {
    /// An empty plan (nothing to retransmit).
    pub fn empty() -> Self {
        ChunkPlan {
            chunks: Vec::new(),
            cost_bits: 0.0,
        }
    }

    /// Total units requested for retransmission.
    pub fn requested_units(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

/// Reusable working memory for the partition planners.
///
/// One scratch per receiver amortizes every per-frame allocation of the
/// feedback path: the good-run prefix sums, the suffix-cost array and
/// the output chunk vector all keep their capacity across frames. The
/// interval DP's `2·L²` table rows have no counterpart here at all — the
/// partition planners never materialize a table.
#[derive(Debug, Clone, Default)]
pub struct ChunkScratch {
    /// `prefix_good[i]` = Σ good-run lengths of runs `0..i` (units).
    prefix_good: Vec<i64>,
    /// `subopt[s]` = fixed-point optimal cost of chunking runs `s..L`
    /// (length `L+1`).
    subopt: Vec<i64>,
    /// The most recent plan; its chunk vector is reused across calls.
    plan: ChunkPlan,
}

impl ChunkScratch {
    /// An empty scratch (allocates lazily on first use).
    pub fn new() -> Self {
        ChunkScratch::default()
    }

    /// The plan produced by the most recent `plan_chunks_*_with` call.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// (Re)builds the good-run prefix sums for `rl`.
    fn fill_prefix(&mut self, rl: &RunLengths) {
        self.prefix_good.clear();
        self.prefix_good.reserve(rl.l() + 1);
        let mut acc = 0i64;
        self.prefix_good.push(0);
        for p in &rl.pairs {
            acc += p.good_len as i64;
            self.prefix_good.push(acc);
        }
    }

    /// `Σ_{l=i}^{j-1} λᵍ_l` from the prefix sums.
    fn interior_good(&self, i: usize, j: usize) -> usize {
        (self.prefix_good[j] - self.prefix_good[i]) as usize
    }
}

/// Plans the optimal chunk set. This is the production entry point: it
/// dispatches to the `O(L)` planner ([`plan_chunks_monotone`]) and
/// produces plans identical to the paper's `O(L³)` interval DP
/// ([`plan_chunks_interval`]).
pub fn plan_chunks(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    plan_chunks_monotone(rl, cost)
}

/// `O(L²)`-time, `O(L)`-space partition DP (allocating wrapper around
/// [`plan_chunks_quadratic_with`]).
pub fn plan_chunks_quadratic(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    plan_chunks_quadratic_with(rl, cost, &mut ChunkScratch::new()).clone()
}

/// `O(L)`-time partition DP (allocating wrapper around
/// [`plan_chunks_monotone_with`]).
pub fn plan_chunks_monotone(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    plan_chunks_monotone_with(rl, cost, &mut ChunkScratch::new()).clone()
}

/// The direct `O(L²)`-time, `O(L)`-space partition DP with greedy
/// smallest-boundary reconstruction.
///
/// `subopt[s] = min_{e ≥ s} w(s, e) + subopt[e + 1]` where `w(s, e)` is
/// Eq. 4 for `e = s` and the merged branch of Eq. 5 otherwise, evaluated
/// directly per `(s, e)` — the obviously-correct form that
/// [`plan_chunks_monotone_with`] must agree with at any scale.
pub fn plan_chunks_quadratic_with<'a>(
    rl: &RunLengths,
    cost: &CostModel,
    scratch: &'a mut ChunkScratch,
) -> &'a ChunkPlan {
    let l = rl.l();
    scratch.plan.chunks.clear();
    scratch.plan.cost_bits = 0.0;
    if l == 0 {
        return &scratch.plan;
    }
    let fxc = cost.fixed();
    scratch.fill_prefix(rl);
    scratch.subopt.clear();
    scratch.subopt.resize(l + 1, 0);
    // ppr-lint: region(no-float) begin — partition DP selection and
    // reconstruction compare exact Q23.40 integers only.
    for s in (0..l).rev() {
        let mut best =
            fxc.singleton(rl.pairs[s].bad_len, rl.pairs[s].good_len) + scratch.subopt[s + 1];
        for e in s + 1..l {
            let cand = fxc.merged(scratch.interior_good(s, e)) + scratch.subopt[e + 1];
            if cand < best {
                best = cand;
            }
        }
        scratch.subopt[s] = best;
    }

    // Greedy smallest-boundary reconstruction (see module docs): the
    // integer candidate sums are exactly the ones the DP minimized, so
    // the equality scans always terminate at the selected group end.
    let mut s = 0usize;
    while s < l {
        if s + 1 == l {
            scratch.plan.chunks.push(rl.chunk_range(s, s));
            break;
        }
        // A single group running to the end wins any tie (the interval
        // DP only splits when a split is strictly cheaper).
        let to_end = fxc.merged(scratch.interior_good(s, l - 1));
        if to_end == scratch.subopt[s] {
            scratch.plan.chunks.push(rl.chunk_range(s, l - 1));
            break;
        }
        let mut e = s;
        loop {
            let cand = if e == s {
                fxc.singleton(rl.pairs[s].bad_len, rl.pairs[s].good_len) + scratch.subopt[s + 1]
            } else {
                fxc.merged(scratch.interior_good(s, e)) + scratch.subopt[e + 1]
            };
            if cand == scratch.subopt[s] {
                break;
            }
            e += 1;
            debug_assert!(e < l, "reconstruction ran past the last run");
        }
        scratch.plan.chunks.push(rl.chunk_range(s, e));
        s = e + 1;
    }
    // ppr-lint: region(no-float) end
    scratch.plan.cost_bits = FxCost::to_bits(scratch.subopt[0]);
    &scratch.plan
}

/// The `O(L)`-time planner: the separable off-diagonal weight reduces
/// the partition DP's minimization to a running suffix minimum of
/// `P[e]·bpu + subopt[e + 1]` (module docs); the Eq. 4 singleton is the
/// one extra candidate per cell.
///
/// Under `debug_assertions` every instance with `L ≤ 96` is cross-checked
/// against [`plan_chunks_quadratic_with`] — the per-instance fallback
/// guard for the total-monotonicity argument.
pub fn plan_chunks_monotone_with<'a>(
    rl: &RunLengths,
    cost: &CostModel,
    scratch: &'a mut ChunkScratch,
) -> &'a ChunkPlan {
    let l = rl.l();
    scratch.plan.chunks.clear();
    scratch.plan.cost_bits = 0.0;
    if l == 0 {
        return &scratch.plan;
    }
    let fxc = cost.fixed();
    scratch.fill_prefix(rl);
    scratch.subopt.clear();
    scratch.subopt.resize(l + 1, 0);
    // ppr-lint: region(no-float) begin — suffix-min DP selection and
    // reconstruction compare exact Q23.40 integers only.
    let two_log_s = 2 * fxc.log_s;
    // P[i]·bpu, exact in fixed point — the separable half of the merged
    // weight.
    let pb = |scratch: &ChunkScratch, i: usize| scratch.prefix_good[i] * fxc.bits_per_unit;
    // Running minimum over e ∈ {s+1, …, L-1} of P[e]·bpu + subopt[e+1],
    // maintained as e-candidates are produced right to left. Integer
    // arithmetic makes the factored candidate (2logS − P[s]·bpu) +
    // suffix_min *equal* to the direct merged(s,e) + subopt[e+1] — the
    // separability that collapses the quadratic scan to O(1) per cell.
    let mut suffix_min = i64::MAX;
    for s in (0..l).rev() {
        let mut best =
            fxc.singleton(rl.pairs[s].bad_len, rl.pairs[s].good_len) + scratch.subopt[s + 1];
        if s + 1 < l {
            let cand = (two_log_s - pb(scratch, s)) + suffix_min;
            if cand < best {
                best = cand;
            }
        }
        scratch.subopt[s] = best;
        suffix_min = suffix_min.min(pb(scratch, s) + scratch.subopt[s + 1]);
    }

    // Greedy smallest-boundary reconstruction with the same integer
    // candidate values the DP minimized.
    let mut s = 0usize;
    while s < l {
        if s + 1 == l {
            scratch.plan.chunks.push(rl.chunk_range(s, s));
            break;
        }
        let to_end = (two_log_s - pb(scratch, s)) + pb(scratch, l - 1);
        if to_end == scratch.subopt[s] {
            scratch.plan.chunks.push(rl.chunk_range(s, l - 1));
            break;
        }
        let singleton =
            fxc.singleton(rl.pairs[s].bad_len, rl.pairs[s].good_len) + scratch.subopt[s + 1];
        let mut e = s;
        if singleton != scratch.subopt[s] {
            e = s + 1;
            loop {
                let cand = (two_log_s - pb(scratch, s)) + (pb(scratch, e) + scratch.subopt[e + 1]);
                if cand == scratch.subopt[s] {
                    break;
                }
                e += 1;
                debug_assert!(e < l, "reconstruction ran past the last run");
            }
        }
        scratch.plan.chunks.push(rl.chunk_range(s, e));
        s = e + 1;
    }
    // ppr-lint: region(no-float) end
    scratch.plan.cost_bits = FxCost::to_bits(scratch.subopt[0]);

    #[cfg(debug_assertions)]
    if l <= 96 {
        let quad = plan_chunks_quadratic(rl, cost);
        debug_assert_eq!(
            scratch.plan.chunks, quad.chunks,
            "monotone planner diverged from the quadratic partition DP"
        );
        debug_assert_eq!(
            scratch.plan.cost_bits, quad.cost_bits,
            "monotone cost diverged from the quadratic partition DP"
        );
    }
    &scratch.plan
}

/// The paper's `O(L³)`-time, `O(L²)`-space interval DP (Eqs. 4–5),
/// kept verbatim as the pinned reference implementation for the property
/// tests and the `chunking_dp` bench ladder. Production code paths call
/// [`plan_chunks`] (the `O(L)` planner) instead; the two produce
/// identical chunk vectors.
pub fn plan_chunks_interval(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    let l = rl.l();
    if l == 0 {
        return ChunkPlan::empty();
    }
    let fxc = cost.fixed();
    // ppr-lint: region(no-float) begin — the pinned reference scores in
    // the same exact Q23.40 integers as the production planners.
    // cost_table[i][j], choice[i][j] for i ≤ j; j index shifted by i.
    let mut cost_table = vec![vec![0i64; l]; l];
    let mut split = vec![vec![usize::MAX; l]; l]; // usize::MAX = merged

    for (i, row) in cost_table.iter_mut().enumerate() {
        row[i] = fxc.singleton(rl.pairs[i].bad_len, rl.pairs[i].good_len);
    }
    for span in 2..=l {
        for i in 0..=(l - span) {
            let j = i + span - 1;
            let mut best = fxc.merged(rl.interior_good(i, j));
            let mut best_split = usize::MAX;
            for k in i..j {
                let c = cost_table[i][k] + cost_table[k + 1][j];
                if c < best {
                    best = c;
                    best_split = k;
                }
            }
            cost_table[i][j] = best;
            split[i][j] = best_split;
        }
    }

    let mut chunks = Vec::new();
    reconstruct(rl, &split, 0, l - 1, &mut chunks);
    chunks.sort_by_key(|c| c.start);
    // ppr-lint: region(no-float) end
    ChunkPlan {
        chunks,
        cost_bits: FxCost::to_bits(cost_table[0][l - 1]),
    }
}

fn reconstruct(
    rl: &RunLengths,
    split: &[Vec<usize>],
    i: usize,
    j: usize,
    out: &mut Vec<UnitRange>,
) {
    if i == j || split[i][j] == usize::MAX {
        out.push(rl.chunk_range(i, j));
        return;
    }
    let k = split[i][j];
    reconstruct(rl, split, i, k, out);
    reconstruct(rl, split, k + 1, j, out);
}

/// Exponential-time reference: evaluates every partition of the bad runs
/// into consecutive groups and returns the best. For property tests only
/// (`L ≤ ~16`).
pub fn plan_chunks_brute(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
    let l = rl.l();
    if l == 0 {
        return ChunkPlan::empty();
    }
    assert!(l <= 20, "brute force is exponential; got L={l}");
    let mut best_cost = f64::INFINITY;
    let mut best_mask = 0u32;
    // Bit b of mask set ⇒ boundary between bad runs b and b+1.
    for mask in 0..(1u32 << (l - 1)) {
        let mut total = 0.0;
        let mut start = 0usize;
        for b in 0..l {
            let is_end = b == l - 1 || mask & (1 << b) != 0;
            if is_end {
                total += group_cost(rl, cost, start, b);
                start = b + 1;
            }
        }
        if total < best_cost {
            best_cost = total;
            best_mask = mask;
        }
    }
    let mut chunks = Vec::new();
    let mut start = 0usize;
    for b in 0..l {
        let is_end = b == l - 1 || best_mask & (1 << b) != 0;
        if is_end {
            chunks.push(rl.chunk_range(start, b));
            start = b + 1;
        }
    }
    ChunkPlan {
        chunks,
        cost_bits: best_cost,
    }
}

/// Cost of one group in a partition: Eq. 4 for singletons, the merged
/// branch of Eq. 5 otherwise.
fn group_cost(rl: &RunLengths, cost: &CostModel, i: usize, j: usize) -> f64 {
    if i == j {
        cost.singleton(rl.pairs[i].bad_len, rl.pairs[i].good_len)
    } else {
        cost.merged(rl.interior_good(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == 'g').collect()
    }

    fn plan(s: &str) -> ChunkPlan {
        let rl = RunLengths::from_labels(&labels(s));
        plan_chunks(&rl, &CostModel::bytes(s.len()))
    }

    /// Runs all three planners on one instance, asserts they agree and
    /// returns the production plan.
    fn plan_all_agree(rl: &RunLengths, cost: &CostModel) -> ChunkPlan {
        let interval = plan_chunks_interval(rl, cost);
        let quad = plan_chunks_quadratic(rl, cost);
        let mono = plan_chunks_monotone(rl, cost);
        assert_eq!(interval.chunks, quad.chunks, "quadratic diverged");
        assert_eq!(interval.chunks, mono.chunks, "monotone diverged");
        let tol = 1e-9 * (1.0 + interval.cost_bits.abs());
        assert!((interval.cost_bits - quad.cost_bits).abs() <= tol);
        assert!((interval.cost_bits - mono.cost_bits).abs() <= tol);
        mono
    }

    #[test]
    fn all_good_plans_nothing() {
        let p = plan("gggggggg");
        assert!(p.chunks.is_empty());
        assert_eq!(p.cost_bits, 0.0);
    }

    #[test]
    fn single_bad_run_is_one_chunk() {
        let p = plan("gggbbbgg");
        assert_eq!(p.chunks, vec![UnitRange::new(3, 6)]);
        assert!(p.cost_bits > 0.0);
    }

    #[test]
    fn nearby_bad_runs_merge() {
        // Two bad runs separated by ONE good byte: describing two chunks
        // costs ~2(logS + logλ) + checksum ≥ 2·log(1000)·… while merging
        // costs 2 logS + 8 bits. Merge must win.
        let mut s = String::new();
        s.push_str(&"g".repeat(400));
        s.push_str("bbb");
        s.push('g');
        s.push_str("bbb");
        s.push_str(&"g".repeat(593));
        let p = plan(&s);
        assert_eq!(p.chunks.len(), 1);
        assert_eq!(p.chunks[0], UnitRange::new(400, 407));
    }

    #[test]
    fn distant_bad_runs_stay_separate() {
        // Two bad runs separated by 300 good bytes (2400 bits): merging
        // would re-send all of them; separate description is far cheaper.
        let mut s = String::new();
        s.push_str(&"g".repeat(100));
        s.push_str("bbbb");
        s.push_str(&"g".repeat(300));
        s.push_str("bb");
        s.push_str(&"g".repeat(594));
        let p = plan(&s);
        assert_eq!(p.chunks.len(), 2);
        assert_eq!(p.chunks[0], UnitRange::new(100, 104));
        assert_eq!(p.chunks[1], UnitRange::new(404, 406));
    }

    #[test]
    fn chunks_cover_all_bad_runs_and_never_overlap() {
        for s in [
            "bgbgbgbgbgbgbg",
            "bbbbgggbbgggggbggggggggggbbbbbbgggggb",
            "gbggggggggggggggggggggggggggggggggggb",
        ] {
            let rl = RunLengths::from_labels(&labels(s));
            let p = plan_all_agree(&rl, &CostModel::bytes(s.len()));
            for pair in &rl.pairs {
                let covered = p
                    .chunks
                    .iter()
                    .filter(|c| c.covers(pair.bad_start) && c.covers(pair.bad().end - 1))
                    .count();
                assert_eq!(covered, 1, "bad run {pair:?} in {s}");
            }
            for w in p.chunks.windows(2) {
                assert!(w[0].end <= w[1].start, "overlap in {s}");
            }
            // Chunks start and end on bad runs (never waste edges).
            let lab = labels(s);
            for c in &p.chunks {
                assert!(!lab[c.start], "chunk starts on good unit in {s}");
                assert!(!lab[c.end - 1], "chunk ends on good unit in {s}");
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_fixed_cases() {
        for s in [
            "bgb",
            "bbggbbggbb",
            "bgggggggggggggggggggggb",
            "bgbgbgbggggggggbgbgb",
            "gggbbgbbgggggbgggggggggggggggbbbbbgb",
        ] {
            let rl = RunLengths::from_labels(&labels(s));
            let cost = CostModel::bytes(s.len().max(64));
            let dp = plan_all_agree(&rl, &cost);
            let brute = plan_chunks_brute(&rl, &cost);
            assert!(
                (dp.cost_bits - brute.cost_bits).abs() < 1e-9,
                "cost mismatch on {s}: dp {} brute {}",
                dp.cost_bits,
                brute.cost_bits
            );
            assert_eq!(dp.chunks, brute.chunks, "chunk mismatch on {s}");
        }
    }

    #[test]
    fn exact_tie_cases_replicate_interval_tie_breaking() {
        // Dyadic cost model: every atomic cost is an integer-valued f64
        // (logS = 4, log λᵇ ∈ {1, 2, 3}, good contributions ∈ {0, 8, 16},
        // merged = 8 + 8·interior), so sums are exact in every planner
        // and ties are genuine. The interval DP's choices (merged beats
        // splits on ties; smallest split point wins) must be replicated
        // exactly.
        let cost = CostModel {
            packet_units: 16,
            bits_per_unit: 8.0,
            checksum_bits: 16.0,
        };
        for s in [
            "bgbgb",
            "bgbgbgbgb",
            "bbgbbgbb",
            "bggbggbggb",
            "bgbggbgbggbgb",
            "bbbbgbgbbbbgbgbbbb",
            "bgggbgggbgggb",
        ] {
            let rl = RunLengths::from_labels(&labels(s));
            let p = plan_all_agree(&rl, &cost);
            let brute = plan_chunks_brute(&rl, &cost);
            assert!((p.cost_bits - brute.cost_bits).abs() < 1e-9, "case {s}");
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        // One scratch across many instances: each call must fully reset
        // the derived state (this is the per-receiver usage pattern).
        let mut scratch = ChunkScratch::new();
        let cost = CostModel::bytes(64);
        let cases = ["bgb", "gggggggg", "bbggbbggbb", "b", "bgbgbgbg"];
        for s in cases {
            let rl = RunLengths::from_labels(&labels(s));
            let fresh = plan_chunks_monotone(&rl, &cost);
            let reused = plan_chunks_monotone_with(&rl, &cost, &mut scratch);
            assert_eq!(reused, &fresh, "monotone scratch reuse on {s}");
        }
        for s in cases {
            let rl = RunLengths::from_labels(&labels(s));
            let fresh = plan_chunks_quadratic(&rl, &cost);
            let reused = plan_chunks_quadratic_with(&rl, &cost, &mut scratch);
            assert_eq!(reused, &fresh, "quadratic scratch reuse on {s}");
        }
    }

    #[test]
    fn doc_example_single_burst() {
        // The facade doc-test scenario: 64 units, bad burst at 28..36.
        let mut hints = [0u8; 64];
        for h in &mut hints[28..36] {
            *h = 9;
        }
        let labels: Vec<bool> = hints.iter().map(|&h| h <= 6).collect();
        let rl = RunLengths::from_labels(&labels);
        let p = plan_chunks(&rl, &CostModel::bytes(64));
        assert_eq!(p.chunks.len(), 1);
        assert!(p.chunks[0].covers(30));
        assert_eq!(p.chunks[0], UnitRange::new(28, 36));
    }

    #[test]
    fn requested_units_accounting() {
        let p = plan("gggbbgggggggggggggggggggggggggggbbbg");
        assert_eq!(
            p.requested_units(),
            p.chunks.iter().map(|c| c.len()).sum::<usize>()
        );
        assert!(p.requested_units() >= 5);
    }
}
