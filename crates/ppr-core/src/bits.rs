//! Bit-exact serialization helpers.
//!
//! PP-ARQ's whole point is feedback-bit economy, so the feedback codec
//! counts bits honestly: offsets and lengths are written with exactly
//! `⌈log₂(S+1)⌉` bits, not rounded up to whole bytes per field. These
//! little-endian-within-byte writers/readers are shared by the feedback
//! and retransmission codecs.

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Writes the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            let bit = (value >> i) & 1 == 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit {
                self.bytes[byte_idx] |= 1 << (self.bit_len % 8);
            }
            self.bit_len += 1;
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Finishes, returning the packed bytes (final partial byte
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader over packed bytes.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at bit position 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads `width` bits (LSB first). Returns `None` when the input is
    /// exhausted — feedback packets arrive over a radio; truncation is a
    /// normal failure, not a panic.
    pub fn read(&mut self, width: usize) -> Option<u64> {
        if width > 64 || self.remaining() < width {
            return None;
        }
        let mut value = 0u64;
        for i in 0..width {
            let byte = self.bytes[self.pos / 8];
            if (byte >> (self.pos % 8)) & 1 == 1 {
                value |= 1 << i;
            }
            self.pos += 1;
        }
        Some(value)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read(1).map(|v| v == 1)
    }
}

/// Bits needed to describe a value in `0..=max` (at least 1).
pub fn width_for(max: usize) -> usize {
    (usize::BITS - max.leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(5, 3);
        w.write(0, 1);
        w.write(1023, 10);
        w.write(u64::MAX, 64);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 3 + 1 + 10 + 64 + 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), Some(5));
        assert_eq!(r.read(1), Some(0));
        assert_eq!(r.read(10), Some(1023));
        assert_eq!(r.read(64), Some(u64::MAX));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write(3, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(2), Some(3));
        // The padding bits of the final byte are readable (zero), then
        // reads fail.
        assert_eq!(r.read(6), Some(0));
        assert_eq!(r.read(1), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write(8, 3);
    }

    #[test]
    fn width_for_reference() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
        assert_eq!(width_for(1499), 11);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        assert_eq!(w.bit_len(), 1);
        let b = w.into_bytes();
        assert_eq!(b.len(), 1);
    }
}
