//! Adaptive threshold selection (§3.3).
//!
//! The SoftPHY contract deliberately hides how hints are computed; the
//! link layer must *learn* a good threshold by observing, for each hint
//! value, how often units carrying that hint turn out correct (it learns
//! this from PP-ARQ's checksum passes: confirmed ranges were correct,
//! retransmitted-after-mismatch ranges were not).
//!
//! [`AdaptiveThreshold`] keeps per-hint-value correctness counts and
//! picks the largest `η` whose *cumulative* miss risk stays below a
//! target — relying only on the monotonicity contract, never on the
//! hint's semantics.

/// Online estimator of the hint threshold `η`.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    /// correct[h], wrong[h]: observed outcomes for units with hint h.
    correct: Vec<u64>,
    wrong: Vec<u64>,
    /// Maximum tolerable P(wrong | hint ≤ η).
    target_miss_rate: f64,
    /// Fallback threshold until enough observations accumulate.
    initial_eta: u8,
    /// Observations needed before trusting the estimate.
    min_samples: u64,
}

impl AdaptiveThreshold {
    /// Creates an estimator over hints in `0..=max_hint`.
    pub fn new(max_hint: u8, initial_eta: u8, target_miss_rate: f64) -> Self {
        AdaptiveThreshold {
            correct: vec![0; max_hint as usize + 1],
            wrong: vec![0; max_hint as usize + 1],
            target_miss_rate,
            initial_eta,
            min_samples: 200,
        }
    }

    /// The paper's defaults: Hamming hints 0..=32, η₀ = 6, 2 % target
    /// miss rate.
    pub fn hamming_default() -> Self {
        Self::new(32, ppr_mac::schemes::DEFAULT_ETA, 0.02)
    }

    /// Records the ground-truth outcome of one unit with hint `h`.
    pub fn observe(&mut self, hint: u8, was_correct: bool) {
        let h = (hint as usize).min(self.correct.len() - 1);
        if was_correct {
            self.correct[h] += 1;
        } else {
            self.wrong[h] += 1;
        }
    }

    /// Records outcomes for a whole span.
    pub fn observe_span(&mut self, hints: &[u8], correct: &[bool]) {
        for (&h, &c) in hints.iter().zip(correct) {
            self.observe(h, c);
        }
    }

    /// Total observations so far.
    pub fn samples(&self) -> u64 {
        self.correct.iter().sum::<u64>() + self.wrong.iter().sum::<u64>()
    }

    /// The current threshold: the largest `η` such that the estimated
    /// miss rate `P(wrong | hint ≤ η)` stays below target. Falls back to
    /// the initial threshold before [`Self::samples`] reaches the
    /// minimum.
    pub fn eta(&self) -> u8 {
        if self.samples() < self.min_samples {
            return self.initial_eta;
        }
        let mut cum_correct = 0u64;
        let mut cum_wrong = 0u64;
        let mut best = 0u8;
        for h in 0..self.correct.len() {
            cum_correct += self.correct[h];
            cum_wrong += self.wrong[h];
            let total = cum_correct + cum_wrong;
            if total == 0 {
                continue;
            }
            let miss = cum_wrong as f64 / total as f64;
            if miss <= self.target_miss_rate {
                best = h as u8;
            }
        }
        best
    }

    /// Estimated miss rate at a given threshold (diagnostics).
    pub fn miss_rate_at(&self, eta: u8) -> f64 {
        let upto = (eta as usize).min(self.correct.len() - 1);
        let c: u64 = self.correct[..=upto].iter().sum();
        let w: u64 = self.wrong[..=upto].iter().sum();
        if c + w == 0 {
            0.0
        } else {
            w as f64 / (c + w) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_initial_eta() {
        let t = AdaptiveThreshold::hamming_default();
        assert_eq!(t.eta(), 6);
        assert_eq!(t.samples(), 0);
    }

    #[test]
    fn learns_clean_separation() {
        // Hints ≤ 4 always correct, hints ≥ 8 always wrong: the learned
        // threshold must land in [4, 8).
        let mut t = AdaptiveThreshold::new(32, 6, 0.02);
        for _ in 0..300 {
            for h in 0..=4u8 {
                t.observe(h, true);
            }
            for h in 8..=20u8 {
                t.observe(h, false);
            }
        }
        let eta = t.eta();
        assert!((4..8).contains(&eta), "eta {eta}");
    }

    #[test]
    fn tightens_when_low_hints_lie() {
        // Even hint-0 units are wrong 20 % of the time (a hostile PHY):
        // the cumulative miss rate exceeds target everywhere, so the
        // threshold collapses to 0 — the contract-respecting answer.
        let mut t = AdaptiveThreshold::new(32, 6, 0.02);
        for i in 0..1000 {
            t.observe(0, i % 5 != 0);
        }
        assert_eq!(t.eta(), 0);
        assert!(t.miss_rate_at(0) > 0.15);
    }

    #[test]
    fn observe_span_matches_pointwise() {
        let mut a = AdaptiveThreshold::new(8, 3, 0.1);
        let mut b = AdaptiveThreshold::new(8, 3, 0.1);
        let hints = [0u8, 1, 5, 7, 2];
        let truth = [true, true, false, false, true];
        a.observe_span(&hints, &truth);
        for (&h, &c) in hints.iter().zip(&truth) {
            b.observe(h, c);
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.eta(), b.eta());
    }

    #[test]
    fn out_of_range_hint_clamps() {
        let mut t = AdaptiveThreshold::new(8, 3, 0.1);
        t.observe(200, false); // clamps to bucket 8 without panicking
        assert_eq!(t.samples(), 1);
    }

    #[test]
    fn miss_rate_is_monotone_in_eta_for_monotone_hints() {
        let mut t = AdaptiveThreshold::new(16, 6, 0.02);
        // Correctness degrades smoothly with hint value.
        for h in 0..=16u8 {
            let wrong_per_100 = (h as u64) * 5;
            for i in 0..100u64 {
                t.observe(h, i >= wrong_per_100);
            }
        }
        let mut prev = 0.0;
        for eta in 0..=16u8 {
            let m = t.miss_rate_at(eta);
            assert!(m >= prev - 1e-12, "miss rate dipped at {eta}");
            prev = m;
        }
    }
}
