//! Run-length representation of a labeled packet (Eq. 2, Fig. 6).
//!
//! After thresholding, a packet is an alternating sequence of good and
//! bad runs. PP-ARQ's planner works on the canonical form
//!
//! `λᵇ₁ λᵍ₁ λᵇ₂ λᵍ₂ … λᵇ_L λᵍ_L`
//!
//! — `L` bad runs, each followed by its good run (the trailing good run
//! may be empty). A good *prefix* of the packet precedes λᵇ₁ and never
//! participates in chunking: it is already received and sits before every
//! candidate chunk.

/// A half-open range of packet units `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitRange {
    /// First unit (inclusive).
    pub start: usize,
    /// One-past-last unit.
    pub end: usize,
}

impl UnitRange {
    /// Creates a range.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end);
        UnitRange { start, end }
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range covers nothing.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Does the range contain unit `i`?
    pub fn covers(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }

    /// Do two ranges overlap?
    pub fn overlaps(&self, other: &UnitRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// One bad run and the good run that follows it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPair {
    /// Start unit of the bad run.
    pub bad_start: usize,
    /// Length of the bad run, `λᵇ` (≥ 1).
    pub bad_len: usize,
    /// Length of the following good run, `λᵍ` (0 allowed for the last).
    pub good_len: usize,
}

impl RunPair {
    /// The bad run as a range.
    pub fn bad(&self) -> UnitRange {
        UnitRange::new(self.bad_start, self.bad_start + self.bad_len)
    }

    /// The following good run as a range.
    pub fn good(&self) -> UnitRange {
        let s = self.bad_start + self.bad_len;
        UnitRange::new(s, s + self.good_len)
    }
}

/// The canonical run-length representation of one labeled packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunLengths {
    /// Length of the good prefix before the first bad run.
    pub leading_good: usize,
    /// The `L` (bad, good) run pairs, in packet order.
    pub pairs: Vec<RunPair>,
    /// Total packet length in units.
    pub total: usize,
}

impl RunLengths {
    /// Builds the representation from good/bad labels
    /// (`true` = good).
    pub fn from_labels(labels: &[bool]) -> Self {
        let mut rl = RunLengths {
            leading_good: 0,
            pairs: Vec::new(),
            total: 0,
        };
        rl.refill_from_labels(labels);
        rl
    }

    /// Rebuilds the representation in place, reusing the `pairs`
    /// allocation — the per-frame entry point of the feedback fast path
    /// (one `RunLengths` per receiver, refilled each round).
    pub fn refill_from_labels(&mut self, labels: &[bool]) {
        let total = labels.len();
        let mut i = 0;
        while i < total && labels[i] {
            i += 1;
        }
        self.leading_good = i;
        self.total = total;
        self.pairs.clear();
        while i < total {
            debug_assert!(!labels[i]);
            let bad_start = i;
            while i < total && !labels[i] {
                i += 1;
            }
            let bad_len = i - bad_start;
            let good_start = i;
            while i < total && labels[i] {
                i += 1;
            }
            self.pairs.push(RunPair {
                bad_start,
                bad_len,
                good_len: i - good_start,
            });
        }
    }

    /// Number of bad runs, `L`.
    pub fn l(&self) -> usize {
        self.pairs.len()
    }

    /// True when the packet has no bad runs at all.
    pub fn all_good(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total units labeled bad.
    pub fn bad_units(&self) -> usize {
        self.pairs.iter().map(|p| p.bad_len).sum()
    }

    /// Total units labeled good (prefix + all good runs).
    pub fn good_units(&self) -> usize {
        self.total - self.bad_units()
    }

    /// The chunk `c_{i,j}` of Eq. 3: everything from the start of bad run
    /// `i` through the end of bad run `j` (interior good runs included,
    /// the good run after `j` excluded). Indices are 0-based.
    pub fn chunk_range(&self, i: usize, j: usize) -> UnitRange {
        debug_assert!(i <= j && j < self.pairs.len());
        UnitRange::new(self.pairs[i].bad_start, self.pairs[j].bad().end)
    }

    /// Units of *good* symbols interior to chunk `c_{i,j}`:
    /// `Σ_{l=i}^{j-1} λᵍ_l`.
    pub fn interior_good(&self, i: usize, j: usize) -> usize {
        self.pairs[i..j].iter().map(|p| p.good_len).sum()
    }

    /// Reconstructs the label vector (for round-trip tests).
    pub fn to_labels(&self) -> Vec<bool> {
        let mut labels = vec![true; self.total];
        for p in &self.pairs {
            for l in labels.iter_mut().skip(p.bad_start).take(p.bad_len) {
                *l = false;
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == 'g').collect()
    }

    #[test]
    fn parses_paper_shape() {
        // bad,good alternating from the start: λb=2, λg=3, λb=1, λg=2
        let rl = RunLengths::from_labels(&labels("bbgggbgg"));
        assert_eq!(rl.leading_good, 0);
        assert_eq!(rl.l(), 2);
        assert_eq!(
            rl.pairs[0],
            RunPair {
                bad_start: 0,
                bad_len: 2,
                good_len: 3
            }
        );
        assert_eq!(
            rl.pairs[1],
            RunPair {
                bad_start: 5,
                bad_len: 1,
                good_len: 2
            }
        );
        assert_eq!(rl.bad_units(), 3);
        assert_eq!(rl.good_units(), 5);
    }

    #[test]
    fn leading_good_prefix_is_separate() {
        let rl = RunLengths::from_labels(&labels("gggbbg"));
        assert_eq!(rl.leading_good, 3);
        assert_eq!(rl.l(), 1);
        assert_eq!(
            rl.pairs[0],
            RunPair {
                bad_start: 3,
                bad_len: 2,
                good_len: 1
            }
        );
    }

    #[test]
    fn trailing_bad_run_has_empty_good() {
        let rl = RunLengths::from_labels(&labels("gbbb"));
        assert_eq!(rl.pairs[0].good_len, 0);
        assert_eq!(rl.pairs[0].bad().end, 4);
    }

    #[test]
    fn all_good_packet() {
        let rl = RunLengths::from_labels(&labels("gggg"));
        assert!(rl.all_good());
        assert_eq!(rl.leading_good, 4);
        assert_eq!(rl.bad_units(), 0);
    }

    #[test]
    fn all_bad_packet() {
        let rl = RunLengths::from_labels(&labels("bbbb"));
        assert_eq!(rl.l(), 1);
        assert_eq!(rl.pairs[0].bad_len, 4);
        assert_eq!(rl.good_units(), 0);
    }

    #[test]
    fn empty_packet() {
        let rl = RunLengths::from_labels(&[]);
        assert!(rl.all_good());
        assert_eq!(rl.total, 0);
    }

    #[test]
    fn labels_roundtrip() {
        for s in ["", "g", "b", "gbgbgb", "bbggbbgg", "gggbbbggg", "bgb"] {
            let l = labels(s);
            assert_eq!(RunLengths::from_labels(&l).to_labels(), l, "case {s}");
        }
    }

    #[test]
    fn refill_matches_fresh_construction() {
        // One reused instance across packets of different shapes and
        // lengths must be indistinguishable from fresh parses.
        let mut reused = RunLengths::from_labels(&labels("bgbgbgbgbgbg"));
        for s in ["", "gggg", "b", "bbggbbgg", "gbgbggggggb", "gggbb"] {
            let l = labels(s);
            reused.refill_from_labels(&l);
            assert_eq!(reused, RunLengths::from_labels(&l), "case {s}");
        }
    }

    #[test]
    fn chunk_ranges_and_interior_good() {
        let rl = RunLengths::from_labels(&labels("bbgggbggbb"));
        // pairs: (0,2,g3), (5,1,g2), (8,2,g0)
        assert_eq!(rl.chunk_range(0, 0), UnitRange::new(0, 2));
        assert_eq!(rl.chunk_range(0, 1), UnitRange::new(0, 6));
        assert_eq!(rl.chunk_range(0, 2), UnitRange::new(0, 10));
        assert_eq!(rl.chunk_range(1, 2), UnitRange::new(5, 10));
        assert_eq!(rl.interior_good(0, 2), 5);
        assert_eq!(rl.interior_good(0, 1), 3);
        assert_eq!(rl.interior_good(1, 1), 0);
    }

    #[test]
    fn unit_range_predicates() {
        let r = UnitRange::new(5, 10);
        assert_eq!(r.len(), 5);
        assert!(r.covers(5) && r.covers(9) && !r.covers(10) && !r.covers(4));
        assert!(r.overlaps(&UnitRange::new(9, 12)));
        assert!(!r.overlaps(&UnitRange::new(10, 12)));
        assert!(UnitRange::new(3, 3).is_empty());
    }
}
