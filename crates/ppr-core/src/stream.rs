//! The streaming-ACK PP-ARQ protocol (§5.2).
//!
//! The paper's full protocol pipelines transfers: "multiple forward-link
//! data packets and reverse-link feedback packets being concatenated
//! together in each transmission, to save per-packet overhead". This
//! module implements that windowed mode on top of the single-packet
//! state machines in [`crate::arq`]:
//!
//! * the sender keeps up to `window` packets in flight, and each
//!   forward **burst** concatenates new data records with
//!   retransmission records answering the previous feedback burst;
//! * the receiver answers with one feedback burst carrying a feedback
//!   record per incomplete packet (completed packets are ACKed once);
//! * every record is individually framed and CRC-16-guarded, so one
//!   corrupted record does not poison the rest of a burst.
//!
//! Compared to lockstep [`crate::arq::run_session`] calls, the streaming
//! mode amortizes per-exchange overhead across the window — the gain the
//! `streaming_pparq` example measures.

use crate::arq::{ArqChannel, DecodedRetx, PpArqConfig, ReceiverPacket, RetxPacket, SenderPacket};
use crate::feedback::Feedback;
use ppr_mac::crc::{crc16, verify_crc32_trailer};
use std::collections::BTreeMap;

/// One record inside a burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A full data packet: `payload · CRC-32` for sequence `seq`.
    Data {
        /// Sequence number.
        seq: u16,
        /// Payload with its CRC-32 trailer appended.
        bytes: Vec<u8>,
    },
    /// A retransmission reply (confirm bitmap + segments).
    Retx(RetxPacket),
    /// A feedback request for one packet.
    Feedback(Feedback),
    /// A completion acknowledgement for one packet.
    Ack {
        /// Sequence number of the completed packet.
        seq: u16,
    },
}

const KIND_DATA: u8 = 1;
const KIND_RETX: u8 = 2;
const KIND_FEEDBACK: u8 = 3;
const KIND_ACK: u8 = 4;

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Data { .. } => KIND_DATA,
            Record::Retx(_) => KIND_RETX,
            Record::Feedback(_) => KIND_FEEDBACK,
            Record::Ack { .. } => KIND_ACK,
        }
    }

    fn body(&self) -> Vec<u8> {
        match self {
            Record::Data { seq, bytes } => {
                let mut b = seq.to_le_bytes().to_vec();
                b.extend_from_slice(bytes);
                b
            }
            Record::Retx(r) => r.encode(),
            Record::Feedback(f) => f.encode(),
            Record::Ack { seq } => seq.to_le_bytes().to_vec(),
        }
    }
}

/// Serializes records into one burst. Record framing:
/// `kind:1 · len:2 · crc16(kind·len):2 · body · crc16(body):2`.
pub fn encode_burst(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        let body = r.body();
        let kind = r.kind();
        let len = body.len() as u16;
        let mut head = vec![kind];
        head.extend_from_slice(&len.to_le_bytes());
        let hcrc = crc16(&head);
        out.extend_from_slice(&head);
        out.extend_from_slice(&hcrc.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc16(&body).to_le_bytes());
    }
    out
}

/// Parses a received burst, keeping only records whose header and body
/// CRCs verify. A corrupted *header* ends parsing (the length field can
/// no longer be trusted); a corrupted *body* skips just that record.
pub fn decode_burst(bytes: &[u8]) -> Vec<Record> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 5 <= bytes.len() {
        let head = &bytes[pos..pos + 3];
        let hcrc = u16::from_le_bytes([bytes[pos + 3], bytes[pos + 4]]);
        if crc16(head) != hcrc {
            break; // cannot trust the length; stop
        }
        let kind = head[0];
        let len = u16::from_le_bytes([head[1], head[2]]) as usize;
        let body_start = pos + 5;
        let body_end = body_start + len;
        if body_end + 2 > bytes.len() {
            break;
        }
        let body = &bytes[body_start..body_end];
        let bcrc = u16::from_le_bytes([bytes[body_end], bytes[body_end + 1]]);
        pos = body_end + 2;
        if crc16(body) != bcrc {
            continue; // this record is damaged; the next may be fine
        }
        match kind {
            KIND_DATA if body.len() >= 2 => {
                let seq = u16::from_le_bytes([body[0], body[1]]);
                out.push(Record::Data {
                    seq,
                    bytes: body[2..].to_vec(),
                });
            }
            KIND_RETX => {
                if let Some(d) = RetxPacket::decode(body) {
                    // Re-wrap into a RetxPacket for transport; decode
                    // keeps only verified parts already.
                    out.push(Record::Retx(RetxPacket {
                        seq: d.seq,
                        packet_len: d.packet_len,
                        confirms: d.confirms.unwrap_or_default(),
                        segments: d.segments,
                    }));
                }
            }
            KIND_FEEDBACK => {
                if let Some(f) = Feedback::decode(body) {
                    out.push(Record::Feedback(f));
                }
            }
            KIND_ACK if body.len() == 2 => {
                out.push(Record::Ack {
                    seq: u16::from_le_bytes([body[0], body[1]]),
                });
            }
            _ => {}
        }
    }
    out
}

/// Outcome of a streaming session.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Packets fully delivered (byte-exact), by sequence.
    pub completed: Vec<u16>,
    /// Exchanges (burst round trips) used.
    pub exchanges: usize,
    /// Total forward-link bytes (data + retransmissions + framing).
    pub forward_bytes: usize,
    /// Total reverse-link bytes (feedback + ACKs + framing).
    pub reverse_bytes: usize,
    /// Delivered payloads by sequence.
    pub payloads: BTreeMap<u16, Vec<u8>>,
}

/// Runs a windowed streaming PP-ARQ session transferring `payloads` over
/// `channel` with up to `window` packets in flight.
pub fn run_stream_session<C: ArqChannel>(
    payloads: &[Vec<u8>],
    window: usize,
    config: PpArqConfig,
    channel: &mut C,
    max_exchanges: usize,
) -> StreamStats {
    assert!(window >= 1);
    let mut stats = StreamStats {
        completed: Vec::new(),
        exchanges: 0,
        forward_bytes: 0,
        reverse_bytes: 0,
        payloads: BTreeMap::new(),
    };
    let mut next_to_send = 0usize;
    let mut senders: BTreeMap<u16, SenderPacket> = BTreeMap::new();
    let mut receivers: BTreeMap<u16, ReceiverPacket> = BTreeMap::new();
    let mut pending_retx: Vec<RetxPacket> = Vec::new();
    let mut resend_data: Vec<u16> = Vec::new();
    let mut acked: Vec<u16> = Vec::new();

    while stats.exchanges < max_exchanges {
        stats.exchanges += 1;

        // Forward burst: retransmissions first, then data records the
        // receiver never responded to (its copy may have been lost
        // outright), then fresh data up to the window.
        let mut records: Vec<Record> = pending_retx.drain(..).map(Record::Retx).collect();
        for seq in resend_data.drain(..) {
            if let Some(sp) = senders.get(&seq) {
                let mut bytes = sp.payload().to_vec();
                ppr_mac::crc::append_crc32(&mut bytes);
                records.push(Record::Data { seq, bytes });
            }
        }
        while senders.len() < window && next_to_send < payloads.len() {
            let seq = next_to_send as u16;
            let payload = payloads[next_to_send].clone();
            senders.insert(seq, SenderPacket::new(seq, payload.clone()));
            let mut bytes = payload;
            ppr_mac::crc::append_crc32(&mut bytes);
            records.push(Record::Data { seq, bytes });
            next_to_send += 1;
        }
        if records.is_empty() && senders.is_empty() && next_to_send >= payloads.len() {
            break; // everything delivered and acknowledged
        }
        let burst = encode_burst(&records);
        stats.forward_bytes += burst.len();
        let (rx_burst, rx_hints) = channel.forward(&burst);

        // Receiver: process records; hints align byte-for-byte with the
        // received burst (records parsed from verified framing).
        let parsed = parse_with_offsets(&rx_burst);
        for (offset, rec) in parsed {
            match rec {
                Record::Data { seq, bytes } => {
                    let crc_ok = verify_crc32_trailer(&bytes);
                    let n = bytes.len().saturating_sub(4);
                    let body = bytes[..n].to_vec();
                    // Hints for the body region of this record (+2 for
                    // the seq field inside the record body).
                    let hstart = (offset + 2).min(rx_hints.len());
                    let hend = (hstart + n).min(rx_hints.len());
                    let mut hints = rx_hints[hstart..hend].to_vec();
                    hints.resize(n, u8::MAX);
                    receivers.entry(seq).or_insert_with(|| {
                        ReceiverPacket::from_reception(seq, body, &hints, crc_ok, config)
                    });
                }
                Record::Retx(r) => {
                    if let Some(state) = receivers.get_mut(&r.seq) {
                        let decoded = DecodedRetx {
                            seq: r.seq,
                            packet_len: r.packet_len,
                            confirms: Some(r.confirms.clone()),
                            segments: r.segments.clone(),
                        };
                        state.apply_retx(&decoded);
                    }
                }
                _ => {}
            }
        }

        // Reverse burst: feedback for incomplete packets, ACKs for
        // completed ones.
        let mut reverse: Vec<Record> = Vec::new();
        for (&seq, state) in receivers.iter_mut() {
            if state.is_complete() {
                if !acked.contains(&seq) {
                    reverse.push(Record::Ack { seq });
                }
            } else {
                reverse.push(Record::Feedback(state.make_feedback()));
            }
        }
        let rburst = encode_burst(&reverse);
        stats.reverse_bytes += rburst.len();
        let (rx_rburst, _) = channel.reverse(&rburst);

        // Sender: process feedback and ACKs; any in-flight packet the
        // receiver said nothing about is presumed lost and re-sent.
        let mut responded: Vec<u16> = Vec::new();
        for rec in decode_burst(&rx_rburst) {
            match rec {
                Record::Ack { seq } => {
                    responded.push(seq);
                    if senders.remove(&seq).is_some() {
                        acked.push(seq);
                    }
                }
                Record::Feedback(fb) => {
                    responded.push(fb.seq);
                    if let Some(sp) = senders.get(&fb.seq) {
                        match sp.on_feedback(&fb) {
                            Some(retx) => pending_retx.push(retx),
                            None => {
                                senders.remove(&fb.seq);
                                acked.push(fb.seq);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for &seq in senders.keys() {
            if !responded.contains(&seq) {
                resend_data.push(seq);
            }
        }
    }

    for (seq, state) in &receivers {
        if state.is_complete() {
            stats.completed.push(*seq);
            stats.payloads.insert(*seq, state.payload().to_vec());
        }
    }
    stats
}

/// Like [`decode_burst`] but also reports each record's body byte offset
/// within the burst (needed to slice per-byte hints), and parses **data
/// records leniently**: a data record whose body CRC fails is still
/// delivered — its bytes are a partial packet, which is exactly what
/// PPR exists to exploit (the per-byte hints and the payload CRC-32
/// tell the receiver state machine what survived).
fn parse_with_offsets(bytes: &[u8]) -> Vec<(usize, Record)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 5 <= bytes.len() {
        let head = &bytes[pos..pos + 3];
        let hcrc = u16::from_le_bytes([bytes[pos + 3], bytes[pos + 4]]);
        if crc16(head) != hcrc {
            break; // length untrustworthy: stop walking
        }
        let kind = head[0];
        let len = u16::from_le_bytes([head[1], head[2]]) as usize;
        let body_start = pos + 5;
        let body_end = body_start + len;
        if body_end + 2 > bytes.len() {
            break;
        }
        if kind == KIND_DATA && len >= 2 {
            let body = &bytes[body_start..body_end];
            let seq = u16::from_le_bytes([body[0], body[1]]);
            out.push((
                body_start,
                Record::Data {
                    seq,
                    bytes: body[2..].to_vec(),
                },
            ));
        } else {
            let slice = &bytes[pos..body_end + 2];
            if let Some(rec) = decode_burst(slice).into_iter().next() {
                out.push((body_start, rec));
            }
        }
        pos = body_end + 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arq::PerfectChannel;

    fn payloads(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|j| (i * 37 + j * 11) as u8).collect())
            .collect()
    }

    #[test]
    fn burst_codec_roundtrip() {
        let records = vec![
            Record::Data {
                seq: 1,
                bytes: vec![9; 40],
            },
            Record::Ack { seq: 7 },
            Record::Feedback(Feedback::from_plan(3, &[1, 2, 3, 4], vec![])),
            Record::Retx(RetxPacket {
                seq: 2,
                packet_len: 100,
                confirms: vec![true, false],
                segments: vec![crate::arq::Segment {
                    offset: 10,
                    bytes: vec![1, 2, 3],
                }],
            }),
        ];
        let decoded = decode_burst(&encode_burst(&records));
        assert_eq!(decoded, records);
    }

    #[test]
    fn corrupt_record_body_is_skipped_not_fatal() {
        let records = vec![
            Record::Data {
                seq: 1,
                bytes: vec![9; 40],
            },
            Record::Data {
                seq: 2,
                bytes: vec![8; 40],
            },
            Record::Ack { seq: 3 },
        ];
        let mut bytes = encode_burst(&records);
        // Corrupt the middle record's body (first record is 5+42+2=49
        // bytes; second record body starts at 49+5).
        bytes[49 + 5 + 10] ^= 0xFF;
        let decoded = decode_burst(&bytes);
        assert_eq!(decoded.len(), 2);
        assert!(matches!(decoded[0], Record::Data { seq: 1, .. }));
        assert!(matches!(decoded[1], Record::Ack { seq: 3 }));
    }

    #[test]
    fn corrupt_header_truncates_burst() {
        let records = vec![
            Record::Ack { seq: 1 },
            Record::Ack { seq: 2 },
            Record::Ack { seq: 3 },
        ];
        let mut bytes = encode_burst(&records);
        bytes[9] ^= 0x01; // second record's header region
        let decoded = decode_burst(&bytes);
        assert_eq!(decoded, vec![Record::Ack { seq: 1 }]);
    }

    #[test]
    fn clean_stream_session_delivers_everything_quickly() {
        let ps = payloads(8, 120);
        let stats = run_stream_session(&ps, 4, PpArqConfig::default(), &mut PerfectChannel, 20);
        assert_eq!(stats.completed.len(), 8);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(stats.payloads[&(i as u16)], *p);
        }
        // 8 packets, window 4, clean channel: 2 data exchanges + the
        // ACK-draining exchanges; far fewer than 8 lockstep round trips.
        assert!(stats.exchanges <= 6, "{} exchanges", stats.exchanges);
    }

    #[test]
    fn bursty_channel_still_delivers_byte_exact() {
        struct Bursty {
            n: usize,
        }
        impl ArqChannel for Bursty {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                self.n += 1;
                let mut out = bytes.to_vec();
                let mut hints = vec![0u8; bytes.len()];
                // Corrupt a span of every other forward burst.
                if self.n % 2 == 1 && out.len() > 60 {
                    let start = out.len() / 3;
                    let end = (start + 40).min(out.len());
                    for i in start..end {
                        out[i] ^= 0x3C;
                        hints[i] = 18;
                    }
                }
                (out, hints)
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                (bytes.to_vec(), vec![0; bytes.len()])
            }
        }
        let ps = payloads(6, 150);
        let stats = run_stream_session(&ps, 3, PpArqConfig::default(), &mut Bursty { n: 0 }, 40);
        assert_eq!(stats.completed.len(), 6, "{stats:?}");
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(stats.payloads[&(i as u16)], *p, "packet {i}");
        }
    }

    #[test]
    fn window_limits_in_flight_data() {
        // With window 1 the first burst carries exactly one data record.
        struct CountFirst {
            first_len: Option<usize>,
        }
        impl ArqChannel for CountFirst {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                if self.first_len.is_none() {
                    self.first_len = Some(bytes.len());
                }
                (bytes.to_vec(), vec![0; bytes.len()])
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                (bytes.to_vec(), vec![0; bytes.len()])
            }
        }
        let ps = payloads(5, 100);
        let mut ch = CountFirst { first_len: None };
        let stats = run_stream_session(&ps, 1, PpArqConfig::default(), &mut ch, 30);
        assert_eq!(stats.completed.len(), 5);
        // One 100 B payload + 4 B CRC + 2 B seq + 7 B framing = 113.
        assert_eq!(ch.first_len, Some(113));
    }

    #[test]
    fn stream_beats_lockstep_on_reverse_overhead() {
        // The streaming mode's reason to exist: fewer, larger exchanges.
        let ps = payloads(10, 200);
        let stream = run_stream_session(&ps, 5, PpArqConfig::default(), &mut PerfectChannel, 30);
        let mut lockstep_reverse = 0usize;
        for p in &ps {
            let s = crate::arq::run_session(p, PpArqConfig::default(), &mut PerfectChannel);
            lockstep_reverse += s.receiver_bytes();
        }
        // Lockstep sends zero feedback on a perfect channel (CRC passes,
        // transfer ends) — so compare exchange counts instead: the
        // stream needs ~2 window-fills, not 10 round trips.
        assert!(
            stream.exchanges < ps.len(),
            "{} exchanges",
            stream.exchanges
        );
        let _ = lockstep_reverse;
        assert_eq!(stream.completed.len(), 10);
    }
}
