//! PP-ARQ: the partial-packet retransmission protocol (§5).
//!
//! One transfer is a lockstep exchange:
//!
//! 1. The sender transmits the full packet (CRC-32 appended).
//! 2. The receiver decodes it (possibly partially), labels bytes via
//!    SoftPHY hints, plans the cheapest chunk request with the §5.1 DP,
//!    and sends a [`Feedback`] packet: chunk ranges + CRC-16 per
//!    complement (good) range.
//! 3. The sender verifies each complement CRC against what it sent —
//!    mismatches expose SoftPHY *misses* — and replies with a
//!    [`RetxPacket`]: a confirmation bitmap for the complement ranges
//!    plus data segments for every requested chunk and every mismatched
//!    range (each segment carrying its own CRC-16).
//! 4. The receiver patches confirmed/retransmitted bytes and repeats
//!    from 2 until every byte is verified.
//!
//! The protocol is transport-agnostic: an [`ArqChannel`] carries raw
//! bytes each way and returns what arrived plus per-byte hints, so the
//! same state machines run over the simulated radio, a perfect pipe, or
//! adversarial unit-test channels.

use crate::bits::{BitReader, BitWriter};
use crate::dp::{plan_chunks, plan_chunks_monotone_with, ChunkPlan, ChunkScratch, CostModel};
use crate::feedback::Feedback;
use crate::hints::PacketHints;
use crate::runs::{RunLengths, UnitRange};
use ppr_mac::crc::{crc16, verify_crc32_trailer};

/// PP-ARQ configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpArqConfig {
    /// SoftPHY threshold `η` for labeling bytes.
    pub eta: u8,
    /// Maximum feedback/retransmission rounds before giving up.
    pub max_rounds: usize,
    /// Bits per unit for the DP cost model (8 = byte units).
    pub bits_per_unit: f64,
    /// Checksum length `λ_C` in bits for the DP cost model.
    pub checksum_bits: f64,
}

impl Default for PpArqConfig {
    fn default() -> Self {
        PpArqConfig {
            eta: ppr_mac::schemes::DEFAULT_ETA,
            max_rounds: 10,
            bits_per_unit: 8.0,
            checksum_bits: 16.0,
        }
    }
}

/// Facade over the chunk planner: hints in, optimal chunk plan out.
#[derive(Debug, Clone, Copy)]
pub struct PpArq {
    config: PpArqConfig,
}

impl PpArq {
    /// Creates a planner with the given configuration.
    pub fn new(config: PpArqConfig) -> Self {
        PpArq { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> PpArqConfig {
        self.config
    }

    /// Plans the optimal feedback chunk set for a packet's hints
    /// (thresholding already baked into [`PacketHints`]).
    pub fn plan_feedback(&self, hints: &PacketHints) -> ChunkPlan {
        let rl = RunLengths::from_labels(&hints.labels());
        let cost = CostModel {
            packet_units: hints.len(),
            bits_per_unit: self.config.bits_per_unit,
            checksum_bits: self.config.checksum_bits,
        };
        plan_chunks(&rl, &cost)
    }

    /// Like [`Self::plan_feedback`] but reusing a caller-provided
    /// [`ChunkScratch`], so a per-receiver loop plans without allocating
    /// DP state per packet. The plan lives in the scratch until the next
    /// call.
    pub fn plan_feedback_with<'a>(
        &self,
        hints: &PacketHints,
        scratch: &'a mut ChunkScratch,
    ) -> &'a ChunkPlan {
        let rl = RunLengths::from_labels(&hints.labels());
        let cost = CostModel {
            packet_units: hints.len(),
            bits_per_unit: self.config.bits_per_unit,
            checksum_bits: self.config.checksum_bits,
        };
        plan_chunks_monotone_with(&rl, &cost, scratch)
    }
}

/// One retransmitted byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Offset of the first byte within the packet payload.
    pub offset: usize,
    /// The retransmitted bytes.
    pub bytes: Vec<u8>,
}

/// The sender's reply to one feedback packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetxPacket {
    /// Sequence number of the data packet.
    pub seq: u16,
    /// Payload length (descriptor widths).
    pub packet_len: usize,
    /// One bit per feedback complement range: did its CRC-16 match the
    /// sender's data?
    pub confirms: Vec<bool>,
    /// Retransmitted segments: every requested chunk plus every
    /// mismatched complement range.
    pub segments: Vec<Segment>,
}

impl RetxPacket {
    /// Serializes. Layout (bit-packed):
    /// `seq:16 · len:16 · n_confirms:8 · bits · crc16(confirm-header):16 ·
    ///  n_segments:8 · (offset:16 · len:16 · crc16(data):16 · data)* `
    pub fn encode(&self) -> Vec<u8> {
        let mut bw = BitWriter::new();
        bw.write(self.seq as u64, 16);
        bw.write(self.packet_len as u64, 16);
        bw.write(self.confirms.len() as u64, 8);
        for &c in &self.confirms {
            bw.write_bit(c);
        }
        // Protect the confirm header with its own CRC-16 so a corrupted
        // bitmap is never trusted (it would mark wrong bytes verified).
        let crc = self.confirm_crc();
        bw.write(crc as u64, 16);
        bw.write(self.segments.len() as u64, 8);
        for s in &self.segments {
            bw.write(s.offset as u64, 16);
            bw.write(s.bytes.len() as u64, 16);
            bw.write(crc16(&s.bytes) as u64, 16);
            for &b in &s.bytes {
                bw.write(b as u64, 8);
            }
        }
        bw.into_bytes()
    }

    fn confirm_crc(&self) -> u16 {
        let mut material = Vec::with_capacity(6 + self.confirms.len());
        material.extend_from_slice(&self.seq.to_le_bytes());
        material.extend_from_slice(&(self.packet_len as u16).to_le_bytes());
        material.extend(self.confirms.iter().map(|&c| c as u8));
        crc16(&material)
    }

    /// Total serialized size in bytes — the paper's Fig. 16 metric.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Decodes a possibly-corrupted retransmission packet.
    ///
    /// The confirm bitmap is kept only when its CRC-16 verifies; each
    /// segment is kept only when its own CRC-16 verifies. Structural
    /// desync (a corrupted length field) truncates parsing — remaining
    /// segments are lost, which a later round repairs.
    pub fn decode(bytes: &[u8]) -> Option<DecodedRetx> {
        let mut br = BitReader::new(bytes);
        let seq = br.read(16)? as u16;
        let packet_len = br.read(16)? as usize;
        let n_confirms = br.read(8)? as usize;
        let mut confirms = Vec::with_capacity(n_confirms);
        for _ in 0..n_confirms {
            confirms.push(br.read_bit()?);
        }
        let claimed_crc = br.read(16)? as u16;
        let tentative = RetxPacket {
            seq,
            packet_len,
            confirms: confirms.clone(),
            segments: vec![],
        };
        let confirms_ok = tentative.confirm_crc() == claimed_crc;

        let mut segments = Vec::new();
        if let Some(n_segments) = br.read(8) {
            'seg: for _ in 0..n_segments {
                let Some(offset) = br.read(16) else { break };
                let Some(len) = br.read(16) else { break };
                let Some(crc) = br.read(16) else { break };
                let mut data = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    let Some(b) = br.read(8) else { break 'seg };
                    data.push(b as u8);
                }
                let in_bounds = (offset as usize) + data.len() <= packet_len;
                if crc16(&data) == crc as u16 && in_bounds {
                    segments.push(Segment {
                        offset: offset as usize,
                        bytes: data,
                    });
                }
            }
        }
        Some(DecodedRetx {
            seq,
            packet_len,
            confirms: if confirms_ok { Some(confirms) } else { None },
            segments,
        })
    }
}

/// A decoded (and integrity-filtered) retransmission packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedRetx {
    /// Sequence number.
    pub seq: u16,
    /// Claimed payload length.
    pub packet_len: usize,
    /// Confirmation bitmap, present only if its CRC verified.
    pub confirms: Option<Vec<bool>>,
    /// Segments whose data CRC verified.
    pub segments: Vec<Segment>,
}

/// Per-byte belief at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteState {
    /// Confirmed correct (checksum-verified or retransmitted verbatim).
    Verified,
    /// SoftPHY labeled good, not yet checksum-confirmed.
    Good,
    /// SoftPHY labeled bad (or never received).
    Bad,
}

/// Receiver-side state for one packet transfer.
#[derive(Debug, Clone)]
pub struct ReceiverPacket {
    /// Sequence number of the transfer.
    pub seq: u16,
    bytes: Vec<u8>,
    state: Vec<ByteState>,
    last_feedback: Option<Feedback>,
    config: PpArqConfig,
    /// Reused planning state: one DP scratch, one label buffer and one
    /// run-length parse per receiver, refilled every feedback round —
    /// the fast path allocates no DP tables per frame.
    scratch: ChunkScratch,
    labels: Vec<bool>,
    runs: RunLengths,
}

impl ReceiverPacket {
    /// Initializes from the first (possibly partial) reception.
    ///
    /// `crc_ok` is the whole-packet CRC-32 verdict: when true, every byte
    /// is immediately verified and the transfer is complete.
    pub fn from_reception(
        seq: u16,
        bytes: Vec<u8>,
        hints: &[u8],
        crc_ok: bool,
        config: PpArqConfig,
    ) -> Self {
        Self::from_reception_with(seq, bytes, hints, crc_ok, config, ChunkScratch::new())
    }

    /// [`Self::from_reception`] with a recycled planner scratch (see
    /// [`Self::into_scratch`]) — how [`run_session_with`] keeps one
    /// scratch alive across back-to-back transfers.
    pub fn from_reception_with(
        seq: u16,
        bytes: Vec<u8>,
        hints: &[u8],
        crc_ok: bool,
        config: PpArqConfig,
        scratch: ChunkScratch,
    ) -> Self {
        assert_eq!(bytes.len(), hints.len(), "one hint per byte");
        let state = if crc_ok {
            vec![ByteState::Verified; bytes.len()]
        } else {
            hints
                .iter()
                .map(|&h| {
                    if h <= config.eta {
                        ByteState::Good
                    } else {
                        ByteState::Bad
                    }
                })
                .collect()
        };
        ReceiverPacket {
            seq,
            bytes,
            state,
            last_feedback: None,
            config,
            scratch,
            labels: Vec::new(),
            runs: RunLengths::from_labels(&[]),
        }
    }

    /// Consumes the receiver, handing its planner scratch back to the
    /// caller for the next transfer.
    pub fn into_scratch(self) -> ChunkScratch {
        self.scratch
    }

    /// Current payload view (may contain unverified bytes mid-transfer).
    pub fn payload(&self) -> &[u8] {
        &self.bytes
    }

    /// Per-byte states.
    pub fn states(&self) -> &[ByteState] {
        &self.state
    }

    /// All bytes verified?
    pub fn is_complete(&self) -> bool {
        self.state.iter().all(|&s| s == ByteState::Verified)
    }

    /// Plans and emits this round's feedback. Chunks cover `Bad` bytes;
    /// every complement range gets a CRC-16 over the receiver's bytes.
    ///
    /// This is the per-frame fast path: labels, run-length parse and DP
    /// state all live in per-receiver buffers reused across rounds, so
    /// planning allocates nothing beyond the emitted [`Feedback`].
    pub fn make_feedback(&mut self) -> Feedback {
        self.labels.clear();
        self.labels
            .extend(self.state.iter().map(|&s| s != ByteState::Bad));
        self.runs.refill_from_labels(&self.labels);
        let cost = CostModel {
            packet_units: self.bytes.len(),
            bits_per_unit: self.config.bits_per_unit,
            checksum_bits: self.config.checksum_bits,
        };
        let plan = plan_chunks_monotone_with(&self.runs, &cost, &mut self.scratch);
        let fb = Feedback::from_plan(self.seq, &self.bytes, plan.chunks.clone());
        self.last_feedback = Some(fb.clone());
        fb
    }

    /// Applies a retransmission reply: confirmations first (so a
    /// mismatched range is marked bad), then segments (which re-verify
    /// overlapping bytes with fresh data).
    pub fn apply_retx(&mut self, retx: &DecodedRetx) {
        if retx.seq != self.seq || retx.packet_len != self.bytes.len() {
            return;
        }
        if let (Some(confirms), Some(fb)) = (&retx.confirms, &self.last_feedback) {
            if confirms.len() == fb.checksums.len() {
                for (&ok, cs) in confirms.iter().zip(&fb.checksums) {
                    let new_state = if ok {
                        ByteState::Verified
                    } else {
                        ByteState::Bad
                    };
                    for s in &mut self.state[cs.range.start..cs.range.end] {
                        // Never downgrade a verified byte.
                        if *s != ByteState::Verified || new_state == ByteState::Verified {
                            *s = new_state;
                        }
                    }
                }
            }
        }
        for seg in &retx.segments {
            let end = seg.offset + seg.bytes.len();
            if end > self.bytes.len() {
                continue;
            }
            self.bytes[seg.offset..end].copy_from_slice(&seg.bytes);
            for s in &mut self.state[seg.offset..end] {
                *s = ByteState::Verified;
            }
        }
    }
}

/// Sender-side state for one packet transfer.
#[derive(Debug, Clone)]
pub struct SenderPacket {
    /// Sequence number of the transfer.
    pub seq: u16,
    payload: Vec<u8>,
}

impl SenderPacket {
    /// Creates the sender state.
    pub fn new(seq: u16, payload: Vec<u8>) -> Self {
        SenderPacket { seq, payload }
    }

    /// The payload (ground truth).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Processes feedback: verifies complement CRCs, retransmits
    /// requested chunks and mismatched ranges. Returns `None` when the
    /// feedback is a clean ACK (nothing requested, everything matching)
    /// — the transfer is complete.
    pub fn on_feedback(&self, fb: &Feedback) -> Option<RetxPacket> {
        if fb.seq != self.seq || fb.packet_len != self.payload.len() {
            // Geometry mismatch: resend everything (cannot trust ranges).
            return Some(RetxPacket {
                seq: self.seq,
                packet_len: self.payload.len(),
                confirms: vec![],
                segments: vec![Segment {
                    offset: 0,
                    bytes: self.payload.clone(),
                }],
            });
        }
        let mut confirms = Vec::with_capacity(fb.checksums.len());
        let mut segments = Vec::new();
        for cs in &fb.checksums {
            let ok = crc16(&self.payload[cs.range.start..cs.range.end]) == cs.crc;
            confirms.push(ok);
            if !ok {
                segments.push(self.segment(cs.range));
            }
        }
        for &chunk in &fb.chunks {
            segments.push(self.segment(chunk));
        }
        if segments.is_empty() {
            return None; // clean ACK
        }
        segments.sort_by_key(|s| s.offset);
        Some(RetxPacket {
            seq: self.seq,
            packet_len: self.payload.len(),
            confirms,
            segments,
        })
    }

    fn segment(&self, r: UnitRange) -> Segment {
        Segment {
            offset: r.start,
            bytes: self.payload[r.start..r.end].to_vec(),
        }
    }
}

/// Transport abstraction: carries bytes each way, returning what arrived
/// plus one SoftPHY hint per received byte.
pub trait ArqChannel {
    /// Data/retransmission direction (sender → receiver).
    fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>);
    /// Feedback direction (receiver → sender).
    fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>);
}

/// A perfect bidirectional pipe (tests, baselines).
#[derive(Debug, Default, Clone, Copy)]
pub struct PerfectChannel;

impl ArqChannel for PerfectChannel {
    fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        (bytes.to_vec(), vec![0; bytes.len()])
    }
    fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        (bytes.to_vec(), vec![0; bytes.len()])
    }
}

/// Outcome of a full PP-ARQ transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Did every byte verify within the round budget?
    pub completed: bool,
    /// Rounds used (0 = first transmission was already clean).
    pub rounds: usize,
    /// Bytes of the initial data transmission (payload + CRC-32).
    pub initial_bytes: usize,
    /// Size of each retransmission packet, bytes (Fig. 16's variable).
    pub retx_sizes: Vec<usize>,
    /// Size of each feedback packet, bytes.
    pub feedback_sizes: Vec<usize>,
    /// The receiver's final payload (for correctness checks).
    pub final_payload: Vec<u8>,
}

impl SessionStats {
    /// Total bytes the sender put on the air (initial + retransmissions).
    pub fn sender_bytes(&self) -> usize {
        self.initial_bytes + self.retx_sizes.iter().sum::<usize>()
    }

    /// Total bytes the receiver put on the air (feedback).
    pub fn receiver_bytes(&self) -> usize {
        self.feedback_sizes.iter().sum()
    }
}

/// Runs one complete lockstep PP-ARQ transfer of `payload` over
/// `channel`.
///
/// The initial transmission carries `payload · CRC-32`; feedback packets
/// carry their own CRC-32 trailer and are ignored by the sender when it
/// fails (the receiver simply re-plans next round, as a real sender's
/// feedback timeout would force).
pub fn run_session<C: ArqChannel>(
    payload: &[u8],
    config: PpArqConfig,
    channel: &mut C,
) -> SessionStats {
    run_session_with(payload, config, channel, &mut ChunkScratch::new())
}

/// [`run_session`] with a caller-held planner scratch: back-to-back
/// transfers (one scratch per receiver/link) reuse the feedback
/// planner's buffers instead of reallocating them per packet. Identical
/// output to [`run_session`].
pub fn run_session_with<C: ArqChannel>(
    payload: &[u8],
    config: PpArqConfig,
    channel: &mut C,
    scratch: &mut ChunkScratch,
) -> SessionStats {
    let seq = 1u16;
    let sender = SenderPacket::new(seq, payload.to_vec());

    // Initial data transmission.
    let mut tx = payload.to_vec();
    ppr_mac::crc::append_crc32(&mut tx);
    let initial_bytes = tx.len();
    let (rx_bytes, rx_hints) = channel.forward(&tx);
    let crc_ok = rx_bytes.len() == tx.len() && verify_crc32_trailer(&rx_bytes);
    // Strip the CRC trailer from the receiver's view (hint-aligned).
    let n = payload.len().min(rx_bytes.len());
    let mut body = rx_bytes[..n].to_vec();
    let mut body_hints = rx_hints[..n].to_vec();
    // A truncated reception: pad to full length with never-received.
    while body.len() < payload.len() {
        body.push(0);
        body_hints.push(u8::MAX);
    }
    let mut receiver = ReceiverPacket::from_reception_with(
        seq,
        body,
        &body_hints,
        crc_ok,
        config,
        std::mem::take(scratch),
    );

    let mut stats = SessionStats {
        completed: receiver.is_complete(),
        rounds: 0,
        initial_bytes,
        retx_sizes: Vec::new(),
        feedback_sizes: Vec::new(),
        final_payload: Vec::new(),
    };

    for round in 1..=config.max_rounds {
        if receiver.is_complete() {
            break;
        }
        stats.rounds = round;

        // Receiver → sender feedback (CRC-32 protected).
        let fb = receiver.make_feedback();
        let mut fb_bytes = fb.encode();
        ppr_mac::crc::append_crc32(&mut fb_bytes);
        stats.feedback_sizes.push(fb_bytes.len());
        let (fb_rx, _) = channel.reverse(&fb_bytes);
        let fb_ok = verify_crc32_trailer(&fb_rx);
        if !fb_ok {
            continue; // sender drops bad feedback; receiver re-plans
        }
        let Some(decoded_fb) = Feedback::decode(&fb_rx[..fb_rx.len() - 4]) else {
            continue;
        };

        // Sender → receiver retransmission.
        let Some(retx) = sender.on_feedback(&decoded_fb) else {
            // Clean ACK: sender is done; receiver state must agree.
            break;
        };
        let retx_bytes = retx.encode();
        stats.retx_sizes.push(retx_bytes.len());
        let (retx_rx, _retx_hints) = channel.forward(&retx_bytes);
        if let Some(decoded) = RetxPacket::decode(&retx_rx) {
            receiver.apply_retx(&decoded);
        }
    }

    stats.completed = receiver.is_complete();
    stats.final_payload = receiver.payload().to_vec();
    *scratch = receiver.into_scratch();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    /// Corrupts fixed byte ranges on the first forward pass only, with
    /// honest hints; subsequent passes are clean.
    struct BurstChannel {
        bursts: Vec<(usize, usize)>,
        first_forward_done: bool,
    }

    impl BurstChannel {
        fn new(bursts: Vec<(usize, usize)>) -> Self {
            BurstChannel {
                bursts,
                first_forward_done: false,
            }
        }
    }

    impl ArqChannel for BurstChannel {
        fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
            let mut out = bytes.to_vec();
            let mut hints = vec![0u8; bytes.len()];
            if !self.first_forward_done {
                self.first_forward_done = true;
                for &(start, len) in &self.bursts {
                    for i in start..(start + len).min(out.len()) {
                        out[i] ^= 0x5A;
                        hints[i] = 20;
                    }
                }
            }
            (out, hints)
        }
        fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
            (bytes.to_vec(), vec![0; bytes.len()])
        }
    }

    #[test]
    fn clean_transfer_completes_in_zero_rounds() {
        let p = payload(250);
        let stats = run_session(&p, PpArqConfig::default(), &mut PerfectChannel);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 0);
        assert!(stats.retx_sizes.is_empty());
        assert_eq!(stats.final_payload, p);
    }

    #[test]
    fn single_burst_recovers_in_one_round() {
        let p = payload(250);
        let mut ch = BurstChannel::new(vec![(100, 30)]);
        let stats = run_session(&p, PpArqConfig::default(), &mut ch);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.final_payload, p);
        assert_eq!(stats.retx_sizes.len(), 1);
        // The retransmission is much smaller than the packet: ~30 bytes
        // of data + segment/confirm overhead, not 250.
        assert!(
            stats.retx_sizes[0] < 60,
            "retx {} bytes",
            stats.retx_sizes[0]
        );
    }

    #[test]
    fn scattered_bursts_recover() {
        let p = payload(500);
        let mut ch = BurstChannel::new(vec![(0, 10), (200, 5), (490, 10)]);
        let stats = run_session(&p, PpArqConfig::default(), &mut ch);
        assert!(stats.completed, "{stats:?}");
        assert_eq!(stats.final_payload, p);
    }

    #[test]
    fn miss_is_caught_by_checksum_pass() {
        // A byte corrupted but labeled GOOD (hint 0): the SoftPHY miss.
        struct MissChannel {
            done: bool,
        }
        impl ArqChannel for MissChannel {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                let mut out = bytes.to_vec();
                let hints = vec![0u8; bytes.len()];
                if !self.done {
                    self.done = true;
                    out[42] ^= 0xFF; // silent corruption, confident hint
                }
                (out, hints)
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                (bytes.to_vec(), vec![0; bytes.len()])
            }
        }
        let p = payload(100);
        let stats = run_session(&p, PpArqConfig::default(), &mut MissChannel { done: false });
        assert!(stats.completed);
        assert_eq!(stats.final_payload, p, "miss must be repaired");
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn truncated_initial_reception_recovers() {
        struct TruncateChannel {
            done: bool,
        }
        impl ArqChannel for TruncateChannel {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                if !self.done {
                    self.done = true;
                    let keep = bytes.len() / 3;
                    return (bytes[..keep].to_vec(), vec![0; keep]);
                }
                (bytes.to_vec(), vec![0; bytes.len()])
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                (bytes.to_vec(), vec![0; bytes.len()])
            }
        }
        let p = payload(300);
        let stats = run_session(
            &p,
            PpArqConfig::default(),
            &mut TruncateChannel { done: false },
        );
        assert!(stats.completed);
        assert_eq!(stats.final_payload, p);
    }

    #[test]
    fn lossy_feedback_only_wastes_a_round() {
        struct LossyFeedback {
            drop_first: bool,
            data_done: bool,
        }
        impl ArqChannel for LossyFeedback {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                let mut out = bytes.to_vec();
                let mut hints = vec![0u8; bytes.len()];
                if !self.data_done {
                    self.data_done = true;
                    for i in 50..80 {
                        out[i] ^= 0xA5;
                        hints[i] = 15;
                    }
                }
                (out, hints)
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                if self.drop_first {
                    self.drop_first = false;
                    let mut out = bytes.to_vec();
                    out[0] ^= 0xFF; // break feedback CRC
                    return (out, vec![0; bytes.len()]);
                }
                (bytes.to_vec(), vec![0; bytes.len()])
            }
        }
        let p = payload(200);
        let stats = run_session(
            &p,
            PpArqConfig::default(),
            &mut LossyFeedback {
                drop_first: true,
                data_done: false,
            },
        );
        assert!(stats.completed);
        assert_eq!(stats.final_payload, p);
        assert_eq!(stats.rounds, 2, "one wasted round, one productive");
    }

    #[test]
    fn corrupted_retx_segment_is_rejected_then_repaired() {
        // First retransmission's segment data gets corrupted in flight;
        // its CRC-16 fails, the receiver keeps the bytes bad, and the
        // second round repairs them.
        struct CorruptRetx {
            forwards: usize,
        }
        impl ArqChannel for CorruptRetx {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                self.forwards += 1;
                let mut out = bytes.to_vec();
                let mut hints = vec![0u8; bytes.len()];
                match self.forwards {
                    1 => {
                        for i in 20..40 {
                            out[i] ^= 0x77;
                            hints[i] = 25;
                        }
                    }
                    2 => {
                        // Corrupt the retx mid-payload (hits segment data).
                        let mid = out.len() - 5;
                        out[mid] ^= 0x01;
                    }
                    _ => {}
                }
                (out, hints)
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                (bytes.to_vec(), vec![0; bytes.len()])
            }
        }
        let p = payload(120);
        let stats = run_session(&p, PpArqConfig::default(), &mut CorruptRetx { forwards: 0 });
        assert!(stats.completed, "{stats:?}");
        assert_eq!(stats.final_payload, p);
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn gives_up_after_max_rounds_on_dead_channel() {
        struct DeadChannel;
        impl ArqChannel for DeadChannel {
            fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                // Everything arrives shredded with honest bad hints.
                (vec![0u8; bytes.len()], vec![30u8; bytes.len()])
            }
            fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
                (vec![0u8; bytes.len()], vec![30u8; bytes.len()])
            }
        }
        let p = payload(80);
        let cfg = PpArqConfig {
            max_rounds: 4,
            ..Default::default()
        };
        let stats = run_session(&p, cfg, &mut DeadChannel);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn retx_packet_roundtrip() {
        let r = RetxPacket {
            seq: 3,
            packet_len: 500,
            confirms: vec![true, false, true],
            segments: vec![
                Segment {
                    offset: 10,
                    bytes: vec![1, 2, 3],
                },
                Segment {
                    offset: 400,
                    bytes: vec![9; 50],
                },
            ],
        };
        let d = RetxPacket::decode(&r.encode()).unwrap();
        assert_eq!(d.seq, 3);
        assert_eq!(d.packet_len, 500);
        assert_eq!(d.confirms, Some(vec![true, false, true]));
        assert_eq!(d.segments, r.segments);
    }

    #[test]
    fn retx_decode_drops_corrupt_confirms_keeps_good_segments() {
        let r = RetxPacket {
            seq: 1,
            packet_len: 100,
            confirms: vec![true, true],
            segments: vec![Segment {
                offset: 5,
                bytes: vec![7; 10],
            }],
        };
        let mut enc = r.encode();
        // Flip a confirm bit (bit 40 = first confirm bit).
        enc[5] ^= 0x01;
        let d = RetxPacket::decode(&enc).unwrap();
        assert_eq!(d.confirms, None, "corrupt bitmap must be distrusted");
        assert_eq!(d.segments.len(), 1);
    }

    #[test]
    fn retx_decode_rejects_out_of_bounds_segment() {
        let r = RetxPacket {
            seq: 1,
            packet_len: 20,
            confirms: vec![],
            segments: vec![Segment {
                offset: 15,
                bytes: vec![1; 10],
            }],
        };
        let d = RetxPacket::decode(&r.encode()).unwrap();
        assert!(d.segments.is_empty());
    }

    #[test]
    fn session_with_recycled_scratch_is_identical() {
        // The same transfers through one shared scratch must produce
        // exactly the stats of independent sessions.
        let mut scratch = crate::dp::ChunkScratch::new();
        for (n, bursts) in [
            (250usize, vec![(100usize, 30usize)]),
            (500, vec![(0, 10), (200, 5), (490, 10)]),
            (120, vec![(20, 20)]),
        ] {
            let p = payload(n);
            let fresh = run_session(
                &p,
                PpArqConfig::default(),
                &mut BurstChannel::new(bursts.clone()),
            );
            let reused = run_session_with(
                &p,
                PpArqConfig::default(),
                &mut BurstChannel::new(bursts),
                &mut scratch,
            );
            assert_eq!(fresh, reused, "payload {n}");
            assert!(reused.completed);
        }
    }

    #[test]
    fn planner_facade_scratch_variant_matches() {
        let mut hints = vec![0u8; 64];
        for h in &mut hints[28..36] {
            *h = 9;
        }
        let arq = PpArq::new(PpArqConfig::default());
        let hints = PacketHints::from_raw(&hints, 6);
        let plain = arq.plan_feedback(&hints);
        let mut scratch = crate::dp::ChunkScratch::new();
        let with = arq.plan_feedback_with(&hints, &mut scratch);
        assert_eq!(with, &plain);
        assert_eq!(scratch.plan(), &plain);
    }

    #[test]
    fn planner_facade_matches_dp() {
        let mut hints = vec![0u8; 64];
        for h in &mut hints[28..36] {
            *h = 9;
        }
        let plan =
            PpArq::new(PpArqConfig::default()).plan_feedback(&PacketHints::from_raw(&hints, 6));
        assert_eq!(plan.chunks.len(), 1);
        assert!(plan.chunks[0].covers(30));
    }
}
