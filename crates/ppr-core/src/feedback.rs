//! The PP-ARQ feedback packet: bit-exact encoding of the receiver's
//! retransmission request (§5.2 step 3).
//!
//! A feedback packet carries, for one data packet `seq`:
//!
//! * the requested **chunks** (offset + length, `⌈log₂(S+1)⌉` bits each,
//!   exactly the descriptor cost the DP optimizes), and
//! * one CRC-16 per **complement range** — the maximal good runs outside
//!   the chunks, *derived* from the chunk list rather than transmitted,
//!   so their offsets cost zero bits. The sender checks each CRC against
//!   what it sent; a mismatch exposes a SoftPHY *miss* hiding in a
//!   "good" run, which the sender then retransmits too.
//!
//! An empty chunk list with one matching whole-packet checksum is the
//! pure-ACK case.

use crate::bits::{width_for, BitReader, BitWriter};
use crate::runs::UnitRange;
use ppr_mac::crc::crc16;

/// A CRC-16 claim about one byte range of the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeChecksum {
    /// The range (derived from the chunk geometry, not encoded).
    pub range: UnitRange,
    /// CRC-16 of the receiver's bytes over that range.
    pub crc: u16,
}

/// A decoded feedback packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    /// Sequence number of the data packet this feedback refers to.
    pub seq: u16,
    /// Length of the data packet's payload, bytes (defines descriptor
    /// widths and complement geometry).
    pub packet_len: usize,
    /// Requested retransmission ranges, sorted, non-overlapping.
    pub chunks: Vec<UnitRange>,
    /// CRC-16 per complement (good) range, in packet order.
    pub checksums: Vec<RangeChecksum>,
}

impl Feedback {
    /// Builds feedback from the receiver's chunk plan and its current
    /// byte view (checksums are computed over `rx_bytes`).
    pub fn from_plan(seq: u16, rx_bytes: &[u8], chunks: Vec<UnitRange>) -> Feedback {
        let checksums = complement_ranges(rx_bytes.len(), &chunks)
            .into_iter()
            .map(|range| RangeChecksum {
                range,
                crc: crc16(&rx_bytes[range.start..range.end]),
            })
            .collect();
        Feedback {
            seq,
            packet_len: rx_bytes.len(),
            chunks,
            checksums,
        }
    }

    /// True when nothing is requested (ACK-shaped feedback).
    pub fn is_ack(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Serializes to bytes. Layout (bit-packed):
    /// `seq:16 · packet_len:16 · n_chunks:8 · (offset:w · len:w)* · crc:16*`
    /// where `w = ⌈log₂(packet_len+1)⌉`.
    pub fn encode(&self) -> Vec<u8> {
        let w = width_for(self.packet_len);
        let mut bw = BitWriter::new();
        bw.write(self.seq as u64, 16);
        bw.write(self.packet_len as u64, 16);
        bw.write(self.chunks.len() as u64, 8);
        for c in &self.chunks {
            bw.write(c.start as u64, w);
            bw.write(c.len() as u64, w);
        }
        for cs in &self.checksums {
            bw.write(cs.crc as u64, 16);
        }
        bw.into_bytes()
    }

    /// Size of the encoded feedback in bits (before byte padding) — the
    /// quantity the DP minimizes, used by the evaluation.
    pub fn encoded_bits(&self) -> usize {
        let w = width_for(self.packet_len);
        16 + 16 + 8 + self.chunks.len() * 2 * w + self.checksums.len() * 16
    }

    /// Deserializes; returns `None` on truncation or malformed geometry
    /// (overlapping/unsorted chunks, ranges out of bounds).
    pub fn decode(bytes: &[u8]) -> Option<Feedback> {
        let mut br = BitReader::new(bytes);
        let seq = br.read(16)? as u16;
        let packet_len = br.read(16)? as usize;
        let n_chunks = br.read(8)? as usize;
        let w = width_for(packet_len);
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut prev_end = 0usize;
        for _ in 0..n_chunks {
            let start = br.read(w)? as usize;
            let len = br.read(w)? as usize;
            let end = start.checked_add(len)?;
            if len == 0 || start < prev_end || end > packet_len {
                return None;
            }
            chunks.push(UnitRange::new(start, end));
            prev_end = end;
        }
        let ranges = complement_ranges(packet_len, &chunks);
        let mut checksums = Vec::with_capacity(ranges.len());
        for range in ranges {
            let crc = br.read(16)? as u16;
            checksums.push(RangeChecksum { range, crc });
        }
        Some(Feedback {
            seq,
            packet_len,
            chunks,
            checksums,
        })
    }
}

/// The maximal ranges of `0..len` not covered by `chunks` (which must be
/// sorted and non-overlapping), in order.
pub fn complement_ranges(len: usize, chunks: &[UnitRange]) -> Vec<UnitRange> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for c in chunks {
        if c.start > cursor {
            out.push(UnitRange::new(cursor, c.start));
        }
        cursor = c.end;
    }
    if cursor < len {
        out.push(UnitRange::new(cursor, len));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_geometry() {
        let chunks = vec![UnitRange::new(10, 20), UnitRange::new(30, 35)];
        assert_eq!(
            complement_ranges(50, &chunks),
            vec![
                UnitRange::new(0, 10),
                UnitRange::new(20, 30),
                UnitRange::new(35, 50)
            ]
        );
        assert_eq!(complement_ranges(50, &[]), vec![UnitRange::new(0, 50)]);
        assert_eq!(
            complement_ranges(20, &[UnitRange::new(0, 20)]),
            Vec::<UnitRange>::new()
        );
        // Chunk flush against the end.
        assert_eq!(
            complement_ranges(20, &[UnitRange::new(15, 20)]),
            vec![UnitRange::new(0, 15)]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let bytes: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let chunks = vec![UnitRange::new(17, 43), UnitRange::new(150, 161)];
        let fb = Feedback::from_plan(7, &bytes, chunks);
        let decoded = Feedback::decode(&fb.encode()).unwrap();
        assert_eq!(decoded, fb);
        assert_eq!(decoded.checksums.len(), 3);
    }

    #[test]
    fn ack_shape() {
        let bytes = vec![1u8; 64];
        let fb = Feedback::from_plan(1, &bytes, vec![]);
        assert!(fb.is_ack());
        assert_eq!(fb.checksums.len(), 1);
        assert_eq!(fb.checksums[0].range, UnitRange::new(0, 64));
        let decoded = Feedback::decode(&fb.encode()).unwrap();
        assert_eq!(decoded, fb);
    }

    #[test]
    fn encoded_bits_matches_writer() {
        let bytes = vec![0u8; 1500];
        let fb = Feedback::from_plan(
            3,
            &bytes,
            vec![
                UnitRange::new(100, 140),
                UnitRange::new(600, 610),
                UnitRange::new(1400, 1500),
            ],
        );
        let padded_bits = fb.encode().len() * 8;
        assert!(fb.encoded_bits() <= padded_bits);
        assert!(padded_bits - fb.encoded_bits() < 8);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Feedback::decode(&[]), None);
        assert_eq!(Feedback::decode(&[0xFF]), None);
        // Overlapping chunks must be rejected.
        let bytes = vec![9u8; 100];
        let mut fb = Feedback::from_plan(0, &bytes, vec![UnitRange::new(10, 30)]);
        fb.chunks = vec![UnitRange::new(10, 30), UnitRange::new(20, 40)];
        // Re-encode with the corrupt geometry (checksums now stale, fine).
        let enc = fb.encode();
        assert_eq!(Feedback::decode(&enc), None);
    }

    #[test]
    fn decode_rejects_out_of_bounds_chunk() {
        let bytes = vec![9u8; 50];
        let mut fb = Feedback::from_plan(0, &bytes, vec![]);
        fb.chunks = vec![UnitRange::new(40, 60)];
        assert_eq!(Feedback::decode(&fb.encode()), None);
    }

    #[test]
    fn feedback_grows_with_chunk_count() {
        let bytes = vec![0u8; 1000];
        let one = Feedback::from_plan(0, &bytes, vec![UnitRange::new(0, 10)]);
        let many = Feedback::from_plan(
            0,
            &bytes,
            (0..20)
                .map(|i| UnitRange::new(i * 40, i * 40 + 10))
                .collect(),
        );
        assert!(many.encoded_bits() > one.encoded_bits());
        // w = 10 bits. one: header 40 + 1 chunk (20) + 1 CRC (16) = 76.
        assert_eq!(one.encoded_bits(), 76);
        // many: header 40 + 20 chunks (400) + 20 complement CRCs (320).
        assert_eq!(many.encoded_bits(), 760);
    }
}
