//! # `ppr-core` — the PPR contribution: SoftPHY interface + PP-ARQ
//!
//! This crate implements the paper's core machinery on top of the
//! `ppr-phy`/`ppr-mac` substrates:
//!
//! * [`hints`] — [`PacketHints`]: a packet's SoftPHY hints plus the
//!   threshold rule `good ⇔ hint ≤ η` (§3.2), unit-agnostic per the
//!   SoftPHY abstraction contract (§3.3).
//! * [`runs`] — the run-length representation
//!   `λᵇ₁λᵍ₁…λᵇ_Lλᵍ_L` (Eq. 2).
//! * [`dp`] — the chunking dynamic program (Eqs. 4–5) choosing the
//!   cheapest set of retransmission chunks. The paper's `O(L³)` interval
//!   DP is kept as the pinned reference; production planning runs an
//!   `O(L)` partition reformulation with identical plans (see the
//!   module docs), plus an exponential reference implementation for
//!   property tests.
//! * [`feedback`] — the bit-exact feedback packet (chunk descriptors +
//!   complement-range CRC-16s).
//! * [`arq`] — the full lockstep PP-ARQ protocol: receiver/sender state
//!   machines, retransmission packets with per-segment CRCs, miss
//!   detection via the checksum pass, and [`arq::run_session`] to drive
//!   a transfer over any [`arq::ArqChannel`].
//! * [`threshold`] — adaptive-η estimation (§3.3's observation-driven
//!   thresholding).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod bits;
pub mod dp;
pub mod feedback;
pub mod hints;
pub mod runs;
pub mod stream;
pub mod threshold;

pub use arq::{
    run_session, run_session_with, ArqChannel, ByteState, DecodedRetx, PerfectChannel, PpArq,
    PpArqConfig, ReceiverPacket, RetxPacket, Segment, SenderPacket, SessionStats,
};
pub use dp::{
    plan_chunks, plan_chunks_brute, plan_chunks_interval, plan_chunks_monotone,
    plan_chunks_monotone_with, plan_chunks_quadratic, plan_chunks_quadratic_with, ChunkPlan,
    ChunkScratch, CostModel,
};
pub use feedback::{complement_ranges, Feedback, RangeChecksum};
pub use hints::PacketHints;
pub use runs::{RunLengths, RunPair, UnitRange};
pub use stream::{run_stream_session, Record, StreamStats};
pub use threshold::AdaptiveThreshold;
