//! Adaptive fragment sizing for the fragmented-CRC scheme (§3.4).
//!
//! The paper sketches two controllers for the per-fragment CRC
//! alternative to SoftPHY:
//!
//! 1. **Feedback-driven** ([`AdaptiveFragSize`]): "if the current value
//!    leads to a large number of contiguous error-free fragments, then c
//!    should be increased; otherwise, it should be reduced".
//! 2. **Model-driven** ([`optimal_fragment_size`]): assume an error
//!    model and derive the analytically optimal size — minimize the
//!    expected airtime per *delivered* payload byte given a byte error
//!    rate.
//!
//! Both are provided; Table 2's sweep uses fixed sizes post facto, as
//! the paper's evaluation does.

/// Multiplicative-increase / multiplicative-decrease fragment-size
/// controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveFragSize {
    current: usize,
    min: usize,
    max: usize,
}

impl Default for AdaptiveFragSize {
    fn default() -> Self {
        AdaptiveFragSize { current: 50, min: 8, max: 512 }
    }
}

impl AdaptiveFragSize {
    /// Creates a controller with explicit bounds.
    ///
    /// # Panics
    /// Panics unless `0 < min ≤ initial ≤ max`.
    pub fn new(initial: usize, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= initial && initial <= max);
        AdaptiveFragSize { current: initial, min, max }
    }

    /// Current fragment payload size, bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Feeds one packet's per-fragment verification outcomes.
    ///
    /// All fragments clean ⇒ the checksums were pure overhead: grow by
    /// 25 %. More than a quarter lost ⇒ each loss wastes a whole
    /// fragment: shrink by half. In between: hold.
    pub fn observe_packet(&mut self, frag_ok: &[bool]) {
        if frag_ok.is_empty() {
            return;
        }
        let lost = frag_ok.iter().filter(|&&ok| !ok).count();
        if lost == 0 {
            self.current = (self.current + self.current / 4).clamp(self.min, self.max);
        } else if lost * 4 > frag_ok.len() {
            self.current = (self.current / 2).clamp(self.min, self.max);
        }
    }
}

/// Expected airtime cost per delivered payload byte for fragment size
/// `c` under an independent byte error rate `p`:
///
/// `cost(c) = (c + 4) / (c · (1 − p)^(c + 4))`
///
/// — each fragment spends `c + 4` bytes of air and delivers `c` bytes
/// with probability `(1 − p)^(c+4)` (its payload *and* CRC must arrive
/// intact).
pub fn fragment_cost(c: usize, p: f64) -> f64 {
    let c = c as f64;
    (c + 4.0) / (c * (1.0 - p).powf(c + 4.0))
}

/// The fragment size minimizing [`fragment_cost`], searched over
/// `1..=max`.
pub fn optimal_fragment_size(byte_error_rate: f64, max: usize) -> usize {
    let p = byte_error_rate.clamp(0.0, 0.999);
    (1..=max)
        .min_by(|&a, &b| {
            fragment_cost(a, p).partial_cmp(&fragment_cost(b, p)).unwrap()
        })
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_clean_packets_and_saturates() {
        let mut a = AdaptiveFragSize::new(50, 8, 200);
        for _ in 0..50 {
            a.observe_packet(&[true; 10]);
        }
        assert_eq!(a.current(), 200);
    }

    #[test]
    fn shrinks_on_heavy_loss_and_saturates() {
        let mut a = AdaptiveFragSize::new(50, 8, 200);
        for _ in 0..20 {
            a.observe_packet(&[false, false, true, false]);
        }
        assert_eq!(a.current(), 8);
    }

    #[test]
    fn holds_on_moderate_loss() {
        let mut a = AdaptiveFragSize::new(64, 8, 512);
        // 1 of 10 lost: between the grow and shrink triggers.
        a.observe_packet(&[
            true, true, true, false, true, true, true, true, true, true,
        ]);
        assert_eq!(a.current(), 64);
    }

    #[test]
    fn empty_observation_is_a_no_op() {
        let mut a = AdaptiveFragSize::default();
        let before = a.current();
        a.observe_packet(&[]);
        assert_eq!(a.current(), before);
    }

    #[test]
    fn optimal_size_decreases_with_error_rate() {
        let clean = optimal_fragment_size(1e-5, 1500);
        let mid = optimal_fragment_size(1e-3, 1500);
        let dirty = optimal_fragment_size(3e-2, 1500);
        assert!(clean > mid, "clean {clean} !> mid {mid}");
        assert!(mid > dirty, "mid {mid} !> dirty {dirty}");
        // At ~0.2 % byte error rate the optimum is tens of bytes —
        // consistent with the paper's empirical 50 B / 30-chunk peak.
        let paper_regime = optimal_fragment_size(2e-3, 1500);
        assert!((20..=120).contains(&paper_regime), "{paper_regime}");
    }

    #[test]
    fn cost_is_convex_ish_around_optimum() {
        let p = 1e-3;
        let c_star = optimal_fragment_size(p, 1500);
        let at = fragment_cost(c_star, p);
        assert!(fragment_cost(c_star.saturating_sub(c_star / 2).max(1), p) > at);
        assert!(fragment_cost(c_star * 3, p) > at);
    }
}
