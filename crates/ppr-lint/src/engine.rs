//! The lint driver: walk the workspace, run every lint, then filter
//! findings through suppressions and the baseline.
//!
//! The walk covers `src/`, `crates/`, `tests/` and `examples/` under
//! the workspace root, skipping `vendor/` (third-party stand-ins we do
//! not hold to project invariants), `target/` and any `fixtures/`
//! directory (lint-test inputs contain violations by design).
//!
//! A raw finding ends up in exactly one bucket:
//!
//! * **suppressed** — an `allow(<lint>)` directive covers its line
//!   (same line, or the directive is a comment-only line immediately
//!   governing it);
//! * **baselined** — listed in `ppr-lint.toml` as pinned debt;
//! * **failing** — everything else; any failing finding makes the run
//!   exit nonzero.
//!
//! `directive` findings (malformed `allow`/`region` comments) are never
//! suppressible — a typo in a suppression must not suppress itself.

use crate::config::{BaselineEntry, Config};
use crate::lints::{check_file_with_readme, Finding};
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that fail the run.
    pub failing: Vec<Finding>,
    /// Findings silenced by an `allow(...)` directive.
    pub suppressed: Vec<Finding>,
    /// Findings pinned in the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched no finding (stale debt).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when nothing fails (suppressed/baselined findings are fine).
    pub fn is_clean(&self) -> bool {
        self.failing.is_empty()
    }

    /// All non-failing-relevant counts folded into one summary line.
    pub fn summary(&self) -> String {
        format!(
            "ppr-lint: {} failing, {} suppressed, {} baselined ({} stale baseline entries), {} files scanned",
            self.failing.len(),
            self.suppressed.len(),
            self.baselined.len(),
            self.stale_baseline.len(),
            self.files_scanned
        )
    }

    /// Renders the report; `verbose` also lists suppressed and
    /// baselined findings (they are always *counted* either way).
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.failing {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.path, f.line, f.lint, f.message, f.context
            ));
        }
        if verbose {
            for f in &self.suppressed {
                out.push_str(&format!(
                    "{}:{}: [{}] suppressed by allow({})\n",
                    f.path, f.line, f.lint, f.lint
                ));
            }
            for f in &self.baselined {
                out.push_str(&format!(
                    "{}:{}: [{}] baselined (pinned debt)\n",
                    f.path, f.line, f.lint
                ));
            }
        }
        for e in &self.stale_baseline {
            out.push_str(&format!(
                "ppr-lint.toml: stale baseline entry {e} (violation no longer present; re-run --fix-baseline)\n"
            ));
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The baseline that would pin every currently failing finding
    /// (plus what is already baselined and still real).
    pub fn as_baseline(&self) -> Config {
        let entries: BTreeSet<BaselineEntry> = self
            .failing
            .iter()
            .chain(&self.baselined)
            .map(|f| BaselineEntry {
                path: f.path.clone(),
                line: f.line,
                lint: f.lint.to_string(),
            })
            .collect();
        Config {
            baseline: entries.into_iter().collect(),
            // Policy, not debt: the caller decides whether to carry the
            // configured allowlist over (the CLI does).
            unsafe_allowlist: Vec::new(),
        }
    }
}

/// Runs every lint over the workspace at `root`.
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut baseline_hit: Vec<bool> = vec![false; cfg.baseline.len()];

    // The axis-doc lint compares the scenario table against the README;
    // a missing README reads as empty, which flags every axis (right:
    // the documentation the lint guards is gone).
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();

    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let file = SourceFile::parse(&rel, &text);
        for finding in check_file_with_readme(&file, cfg, Some(&readme)) {
            if finding.lint != "directive" && is_suppressed(&file, &finding) {
                report.suppressed.push(finding);
            } else if let Some(i) = cfg.baseline.iter().position(|e| {
                e.path == finding.path && e.line == finding.line && e.lint == finding.lint
            }) {
                baseline_hit[i] = true;
                report.baselined.push(finding);
            } else {
                report.failing.push(finding);
            }
        }
    }

    report.stale_baseline = cfg
        .baseline
        .iter()
        .zip(&baseline_hit)
        .filter(|(_, hit)| !**hit)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(report)
}

/// A finding is suppressed when an `allow` directive naming its lint
/// sits on the same line, or on a comment-only line whose next code
/// line is the finding's.
fn is_suppressed(file: &SourceFile, finding: &Finding) -> bool {
    file.allows.iter().any(|a| {
        a.lints.iter().any(|l| l == finding.lint)
            && (a.line == finding.line
                || (!file.lexed.line_has_code(a.line)
                    && file.next_code_line(a.line) == Some(finding.line)))
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // absent top-level dirs (e.g. no examples/) are fine
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with `/` separators (baseline entries and
/// report lines must not depend on the machine's absolute layout).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, text: &str) {
        let p = dir.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(p, text).unwrap();
    }

    fn temp_ws(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ppr-lint-engine-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn buckets_and_baseline() {
        let ws = temp_ws("buckets");
        write(
            &ws,
            "crates/ppr-sim/src/a.rs",
            "use std::collections::HashMap;\n\
             let m: HashMap<u8, u8>; // ppr-lint: allow(determinism) fixed-seed hasher planned\n",
        );
        write(&ws, "vendor/rand/src/lib.rs", "pub fn thread_rng() {}\n");
        write(
            &ws,
            "crates/ppr-sim/fixtures/bad.rs",
            "use std::collections::HashSet;\n",
        );

        // No baseline: line 1 fails, line 2 suppressed; vendor/ and
        // fixtures/ invisible.
        let report = run(&ws, &Config::default()).unwrap();
        assert_eq!(report.failing.len(), 1);
        assert_eq!(report.failing[0].line, 1);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.files_scanned, 1);

        // Pin the failing finding; the run goes clean.
        let cfg = report.as_baseline();
        assert_eq!(cfg.baseline.len(), 1);
        let report2 = run(&ws, &cfg).unwrap();
        assert!(report2.is_clean(), "{}", report2.render(true));
        assert_eq!(report2.baselined.len(), 1);
        assert!(report2.stale_baseline.is_empty());

        // Fix the debt: the baseline entry goes stale but nothing fails.
        write(
            &ws,
            "crates/ppr-sim/src/a.rs",
            "use std::collections::BTreeMap;\n",
        );
        let report3 = run(&ws, &cfg).unwrap();
        assert!(report3.is_clean());
        assert_eq!(report3.stale_baseline.len(), 1);
        let _ = std::fs::remove_dir_all(&ws);
    }

    #[test]
    fn config_unsafe_allowlist_applies_end_to_end() {
        let ws = temp_ws("unsafecfg");
        write(
            &ws,
            "crates/ppr-mac/src/clmul.rs",
            "// SAFETY: pclmulqdq checked by the dispatcher.\nunsafe fn fold() {}\n",
        );
        // Without the config entry the module fails containment…
        let report = run(&ws, &Config::default()).unwrap();
        assert_eq!(report.failing.len(), 1);
        assert_eq!(report.failing[0].lint, "unsafe-containment");
        // …and with it the run is clean (no baseline involved).
        let cfg = Config {
            unsafe_allowlist: vec!["crates/ppr-mac/src/clmul.rs".to_string()],
            ..Config::default()
        };
        let report = run(&ws, &cfg).unwrap();
        assert!(report.is_clean(), "{}", report.render(true));
        let _ = std::fs::remove_dir_all(&ws);
    }

    #[test]
    fn comment_line_suppression_covers_next_code_line() {
        let ws = temp_ws("nextline");
        write(
            &ws,
            "crates/ppr-core/src/a.rs",
            "// ppr-lint: allow(determinism) iteration order irrelevant here\n\
             use std::collections::HashSet;\n\
             use std::collections::HashSet;\n",
        );
        let report = run(&ws, &Config::default()).unwrap();
        // Only the line directly after the directive is covered.
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.failing.len(), 1);
        assert_eq!(report.failing[0].line, 3);
        let _ = std::fs::remove_dir_all(&ws);
    }

    #[test]
    fn directive_findings_are_not_suppressible() {
        let ws = temp_ws("meta");
        write(
            &ws,
            "src/a.rs",
            "// ppr-lint: allow(directive)\n// ppr-lint: allow(bogus-lint)\n",
        );
        let report = run(&ws, &Config::default()).unwrap();
        assert_eq!(report.failing.len(), 1);
        assert_eq!(report.failing[0].lint, "directive");
        let _ = std::fs::remove_dir_all(&ws);
    }
}
