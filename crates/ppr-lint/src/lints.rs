//! The workspace invariants, as named lints.
//!
//! Each lint is a lexical pass over one [`SourceFile`]'s code tokens —
//! comments, strings and doc text never fire. The lints encode the
//! conventions the compiler cannot check (see `docs/ARCHITECTURE.md`,
//! "Invariants & lints"):
//!
//! | Lint | Invariant |
//! |---|---|
//! | `determinism` | no `HashMap`/`HashSet` (default `RandomState` iteration order) in the deterministic crates; no `Instant::now`/`SystemTime::now`/`thread_rng` outside `ppr-bench`/`ppr-cli` |
//! | `unsafe-containment` | `unsafe` only in the allowlisted modules, and every `unsafe` site carries a `// SAFETY:` justification |
//! | `no-float` | no float literals or `f32`/`f64` tokens inside declared `region(no-float)` spans (the Q23.40 planner scoring and CRC paths) |
//! | `env-hygiene` | `std::env::var`/`var_os` only in `ppr_sim::env`, `ppr-cli` and `ppr-bench` |
//! | `event-key-doc` | `ppr_sim::event` documents the heap ordering key verbatim — the literal `(time, priority, seq)` must appear in the module, so the total-order contract every driver leans on cannot silently rot out of the docs |
//! | `snapshot-field-doc` | every field inside a declared `region(snapshot-state)` span carries a `snapshot:` comment stating whether it is serialized or rebuilt on restore, and the checkpointed drivers (`ppr_sim::network`, the mesh experiment, the adversary actor) each declare at least one such region — so the snapshot format's field inventory cannot drift from the structs it serializes |
//! | `axis-doc` | every axis key in `ppr_sim::scenario`'s `SCENARIO_KEYS` table has a `` | `key` `` row in the README's scenario-axis table — so `--set` surface and documentation cannot drift apart |
//! | `directive` | `ppr-lint:` comments themselves parse and regions match (not suppressible) |
//!
//! Being lexical is a feature (no `syn`, no build, runs in
//! milliseconds) and a limit: a call like `FxCost::to_bits(x)` returns
//! `f64` without any float *token* on the line, and a `HashMap` behind
//! a type alias would hide. The lints guard the conventions as written
//! in this codebase — idiomatic std names, spelled out — which review
//! keeps true.

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One lint violation (before suppression/baseline filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name.
    pub lint: &'static str,
    /// Human explanation of the violation.
    pub message: String,
    /// Trimmed source line for context.
    pub context: String,
}

/// Names of every lint, for `--list` and allow(...) validation.
pub const LINT_NAMES: [&str; 8] = [
    "determinism",
    "unsafe-containment",
    "no-float",
    "env-hygiene",
    "event-key-doc",
    "snapshot-field-doc",
    "axis-doc",
    "directive",
];

/// Crates whose iteration order and RNG usage feed `Reception` streams
/// and experiment output: the `determinism` collection scope.
const DETERMINISTIC_SCOPES: [&str; 6] = [
    "crates/ppr-core/",
    "crates/ppr-phy/",
    "crates/ppr-mac/",
    "crates/ppr-channel/",
    "crates/ppr-sim/",
    "src/", // the facade crate re-exports the deterministic surface
];

/// Crates allowed to read wall-clock time and OS randomness (drivers
/// and benchmarks — never simulation or protocol code).
const TIMING_EXEMPT_SCOPES: [&str; 2] = ["crates/ppr-bench/", "crates/ppr-cli/"];

/// The built-in modules allowed to contain `unsafe` (each must justify
/// every site with a `// SAFETY:` comment). Further modules are added
/// through the `unsafe-allowlist` array in `ppr-lint.toml` — a config
/// edit is reviewable debt, a lint-tool edit is not.
const UNSAFE_ALLOWLIST: [&str; 1] = ["crates/ppr-phy/src/simd.rs"];

/// Files/crates allowed to read environment variables. Everything else
/// must take configuration through `Scenario`/arguments so runs are
/// reproducible from their inputs alone.
const ENV_ALLOWLIST: [&str; 3] = [
    "crates/ppr-sim/src/env.rs",
    "crates/ppr-cli/",
    "crates/ppr-bench/",
];

fn in_scope(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.starts_with(s))
}

/// Runs every lint over one file. `cfg` supplies the configured
/// extension of the `unsafe` allowlist; the baseline is applied later
/// by the engine, not here. Without README text the `axis-doc` lint
/// cannot run — the engine uses [`check_file_with_readme`].
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    check_file_with_readme(file, cfg, None)
}

/// [`check_file`] plus the cross-file `axis-doc` lint, which compares
/// the scenario-axis table against `readme` (the workspace README's
/// text; the engine passes the file's content, or `""` when the README
/// itself is missing — which correctly flags every axis as undocumented).
pub fn check_file_with_readme(
    file: &SourceFile,
    cfg: &Config,
    readme: Option<&str>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    directive_lint(file, &mut findings);
    determinism_lint(file, &mut findings);
    unsafe_containment_lint(file, cfg, &mut findings);
    no_float_lint(file, &mut findings);
    env_hygiene_lint(file, &mut findings);
    event_key_doc_lint(file, &mut findings);
    snapshot_field_doc_lint(file, &mut findings);
    if let Some(readme) = readme {
        axis_doc_lint(file, readme, &mut findings);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

fn finding(file: &SourceFile, line: u32, lint: &'static str, message: String) -> Finding {
    Finding {
        path: file.rel_path.clone(),
        line,
        lint,
        message,
        context: file.context(line),
    }
}

/// Malformed `ppr-lint:` comments are violations themselves, so a typo
/// in a suppression cannot silently disable it.
fn directive_lint(file: &SourceFile, out: &mut Vec<Finding>) {
    for err in &file.directive_errors {
        out.push(finding(file, err.line, "directive", err.message.clone()));
    }
    for allow in &file.allows {
        for lint in &allow.lints {
            if !LINT_NAMES.contains(&lint.as_str()) {
                out.push(finding(
                    file,
                    allow.line,
                    "directive",
                    format!("allow({lint}) names an unknown lint"),
                ));
            }
        }
    }
}

/// `determinism`: hashed collections in the deterministic crates, and
/// wall-clock/OS-randomness outside the driver/bench crates.
fn determinism_lint(file: &SourceFile, out: &mut Vec<Finding>) {
    let collection_scope = in_scope(&file.rel_path, &DETERMINISTIC_SCOPES);
    let timing_scope = !in_scope(&file.rel_path, &TIMING_EXEMPT_SCOPES);
    if !collection_scope && !timing_scope {
        return;
    }
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if collection_scope {
            match name.as_str() {
                "HashMap" | "HashSet" => out.push(finding(
                    file,
                    tok.line,
                    "determinism",
                    format!(
                        "`{name}` iterates in `RandomState` hash order, which can leak into \
                         Reception streams and experiment output; use `BTreeMap`/`BTreeSet` \
                         or a fixed-seed hasher"
                    ),
                )),
                "RandomState" => out.push(finding(
                    file,
                    tok.line,
                    "determinism",
                    "`RandomState` is seeded from OS entropy per process".to_string(),
                )),
                _ => {}
            }
        }
        if timing_scope {
            match name.as_str() {
                "Instant" | "SystemTime" if followed_by_now(tokens, i) => out.push(finding(
                    file,
                    tok.line,
                    "determinism",
                    format!(
                        "`{name}::now` reads the wall clock; simulation and protocol code \
                         must be a function of its inputs (only ppr-bench/ppr-cli may time)"
                    ),
                )),
                "thread_rng" => out.push(finding(
                    file,
                    tok.line,
                    "determinism",
                    "`thread_rng` draws OS-seeded randomness; use the seeded per-reception \
                     RNG streams"
                        .to_string(),
                )),
                _ => {}
            }
        }
    }
}

/// `event-key-doc`: the event-core module must spell out its heap
/// ordering key, `(time, priority, seq)`, verbatim. Every simulation
/// driver's determinism argument reduces to that total order; the lint
/// keeps the contract written down next to the queue it governs.
fn event_key_doc_lint(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel_path != "crates/ppr-sim/src/event.rs" {
        return;
    }
    if !file
        .lines
        .iter()
        .any(|l| l.contains("(time, priority, seq)"))
    {
        out.push(finding(
            file,
            1,
            "event-key-doc",
            "the event module must document its total ordering key with the literal \
             `(time, priority, seq)` — drivers rely on that contract for bit-identical replay"
                .to_string(),
        ));
    }
}

/// Files that hold checkpointed driver state and therefore must declare
/// at least one `region(snapshot-state)` span. The snapshot format's
/// field inventory is only as trustworthy as the regions that opt the
/// state in — a driver refactor that silently dropped its region would
/// also drop the field-doc requirement below.
const SNAPSHOT_STATE_FILES: [&str; 3] = [
    "crates/ppr-sim/src/network.rs",
    "crates/ppr-sim/src/experiments/mesh.rs",
    "crates/ppr-sim/src/adversary.rs",
];

/// `snapshot-field-doc`: inside a declared `region(snapshot-state)`
/// span, every field declaration must carry a `snapshot:` comment (same
/// line, or immediately above) stating whether the field is serialized
/// into the checkpoint or rebuilt on restore. The checkpointed drivers
/// themselves must declare such regions; anything else that opts in
/// (snapshot structs, the event queue) gets the same field discipline.
fn snapshot_field_doc_lint(file: &SourceFile, out: &mut Vec<Finding>) {
    let has_region = file.regions.iter().any(|r| r.name == "snapshot-state");
    if SNAPSHOT_STATE_FILES.contains(&file.rel_path.as_str()) && !has_region {
        out.push(finding(
            file,
            1,
            "snapshot-field-doc",
            "this file holds checkpointed driver state and must declare at least one \
             `region(snapshot-state)` span so every state field documents its snapshot fate"
                .to_string(),
        ));
    }
    if !has_region {
        return;
    }
    // Declaration keywords that start non-field lines a region might
    // still cover (struct headers, impl blocks, helper code).
    const NON_FIELD_STARTERS: [&str; 16] = [
        "struct",
        "enum",
        "union",
        "impl",
        "fn",
        "let",
        "use",
        "mod",
        "const",
        "static",
        "type",
        "trait",
        "where",
        "match",
        "macro_rules",
        "return",
    ];
    let tokens = &file.lexed.tokens;
    let mut i = 0;
    while i < tokens.len() {
        let line = tokens[i].line;
        let mut j = i;
        while j < tokens.len() && tokens[j].line == line {
            j += 1;
        }
        let line_toks = &tokens[i..j];
        i = j;
        if !file.in_region("snapshot-state", line) {
            continue;
        }
        let TokenKind::Ident(first) = &line_toks[0].kind else {
            continue; // closing braces, attributes, …
        };
        if NON_FIELD_STARTERS.contains(&first.as_str()) {
            continue;
        }
        // A field declaration carries a single `name: Type` colon
        // (`::` path separators are two adjacent colon tokens).
        let single_colon = |k: usize| {
            line_toks[k].kind == TokenKind::Punct(':')
                && (k == 0 || line_toks[k - 1].kind != TokenKind::Punct(':'))
                && line_toks
                    .get(k + 1)
                    .is_none_or(|t| t.kind != TokenKind::Punct(':'))
        };
        if !(0..line_toks.len()).any(single_colon) {
            continue;
        }
        if !comment_covers(file, line, &|text: &str| text.contains("snapshot:")) {
            out.push(finding(
                file,
                line,
                "snapshot-field-doc",
                "field inside a region(snapshot-state) span without a `snapshot:` comment \
                 saying whether it is serialized into the checkpoint or rebuilt on restore"
                    .to_string(),
            ));
        }
    }
}

/// The one file that owns the scenario-axis surface: every `--set` key
/// the CLI accepts is declared in this file's `SCENARIO_KEYS` table.
const SCENARIO_FILE: &str = "crates/ppr-sim/src/scenario.rs";

/// `axis-doc`: every axis key in the `SCENARIO_KEYS` table must have a
/// `` | `key` `` row in the README's scenario-axis table. The lexer
/// drops string contents, so this lint re-scans the raw lines with a
/// tiny literal-aware reader — the table is the one place where string
/// *contents* are the invariant.
fn axis_doc_lint(file: &SourceFile, readme: &str, out: &mut Vec<Finding>) {
    if file.rel_path != SCENARIO_FILE {
        return;
    }
    let src = file.lines.join("\n");
    let keys = scenario_axis_keys(&src);
    if keys.is_empty() {
        out.push(finding(
            file,
            1,
            "axis-doc",
            "no `SCENARIO_KEYS` table found in the scenario module; the axis-doc lint \
             needs it to hold every `--set` key"
                .to_string(),
        ));
        return;
    }
    for (line, key) in keys {
        let row = format!("| `{key}`");
        if !readme.contains(&row) {
            out.push(finding(
                file,
                line,
                "axis-doc",
                format!(
                    "scenario axis `{key}` has no `| `{key}`` row in the README's \
                     scenario-axis table; document every `--set` key where users look first"
                ),
            ));
        }
    }
}

/// Extracts `(line, key)` for each tuple in the `SCENARIO_KEYS` array:
/// the first string literal inside each top-level parenthesis group.
/// Understands string literals (so `(` inside a description does not
/// open a tuple) and `\`-escapes (so multi-line literals survive).
fn scenario_axis_keys(src: &str) -> Vec<(u32, String)> {
    let Some(decl) = src.find("SCENARIO_KEYS") else {
        return Vec::new();
    };
    // Skip the type annotation (`&[(&str, &str)]` has brackets of its
    // own): the array literal is the first `[` after the `=`.
    let Some(eq) = src[decl..].find('=').map(|i| decl + i) else {
        return Vec::new();
    };
    let Some(open) = src[eq..].find('[').map(|i| i + eq - decl) else {
        return Vec::new();
    };
    let mut line = 1 + src[..decl + open].matches('\n').count() as u32;
    let mut keys = Vec::new();
    let mut chars = src[decl + open + 1..].chars().peekable();
    let mut paren_depth = 0usize; // tuple nesting inside the array
    let mut bracket_depth = 0usize;
    let mut key_taken = false; // first literal of the current tuple seen
    while let Some(c) = chars.next() {
        match c {
            '\n' => line += 1,
            '(' => {
                paren_depth += 1;
                if paren_depth == 1 {
                    key_taken = false;
                }
            }
            ')' => paren_depth = paren_depth.saturating_sub(1),
            '[' => bracket_depth += 1,
            ']' => {
                if bracket_depth == 0 {
                    break; // the array's own closing bracket
                }
                bracket_depth -= 1;
            }
            '"' => {
                let start_line = line;
                let mut text = String::new();
                while let Some(sc) = chars.next() {
                    match sc {
                        '"' => break,
                        '\\' => {
                            // Skip the escaped char; `\` + newline is the
                            // multi-line continuation, keep counting lines.
                            if let Some(&esc) = chars.peek() {
                                if esc == '\n' {
                                    line += 1;
                                }
                                chars.next();
                            }
                        }
                        '\n' => line += 1,
                        _ => text.push(sc),
                    }
                }
                if paren_depth == 1 && !key_taken {
                    key_taken = true;
                    keys.push((start_line, text));
                }
            }
            _ => {}
        }
    }
    keys
}

/// Is token `i` followed by `:: now`?
fn followed_by_now(tokens: &[crate::lexer::Token], i: usize) -> bool {
    matches!(
        tokens.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct(':'))
    ) && matches!(
        tokens.get(i + 2).map(|t| &t.kind),
        Some(TokenKind::Punct(':'))
    ) && matches!(tokens.get(i + 3).map(|t| &t.kind), Some(TokenKind::Ident(n)) if n == "now")
}

/// `unsafe-containment`: `unsafe` only in the allowlist (the built-in
/// set unioned with the config's `unsafe-allowlist`), and every site
/// justified by a `// SAFETY:` comment (same line, or immediately above
/// across attribute/comment/blank lines).
fn unsafe_containment_lint(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let allowlisted = UNSAFE_ALLOWLIST
        .iter()
        .any(|m| file.rel_path.starts_with(m))
        || cfg
            .unsafe_allowlist
            .iter()
            .any(|m| file.rel_path.starts_with(m.as_str()));
    for tok in &file.lexed.tokens {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if name != "unsafe" {
            continue;
        }
        if !allowlisted {
            out.push(finding(
                file,
                tok.line,
                "unsafe-containment",
                "`unsafe` outside the allowlisted module set (built in: ppr_phy::simd; \
                 configured: the `unsafe-allowlist` array in ppr-lint.toml); extend the \
                 allowlist deliberately or keep the code safe"
                    .to_string(),
            ));
        } else if !has_safety_comment(file, tok.line) {
            out.push(finding(
                file,
                tok.line,
                "unsafe-containment",
                "`unsafe` site without a `// SAFETY:` comment justifying it".to_string(),
            ));
        }
    }
}

/// Looks for a SAFETY comment covering `line`: on the line itself, or
/// scanning upward while lines are blank, comment-only, or attributes.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    comment_covers(file, line, &comment_is_safety)
}

/// Does a comment matching `pred` cover `line` — on the line itself, or
/// scanning upward while lines are blank, comment-only, or attributes?
fn comment_covers(file: &SourceFile, line: u32, pred: &dyn Fn(&str) -> bool) -> bool {
    let hit = |l: u32| {
        file.lexed
            .comments
            .iter()
            .any(|c| c.line <= l && l <= c.end_line && pred(&c.text))
    };
    if hit(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if hit(l) {
            return true;
        }
        match file.lexed.first_token_on_line(l) {
            // Attributes (e.g. #[target_feature]) may sit between the
            // comment and the item it covers.
            Some(tok) if tok.kind == TokenKind::Punct('#') => continue,
            Some(_) => return false,
            None => continue, // blank or comment-only line
        }
    }
    false
}

fn comment_is_safety(text: &str) -> bool {
    text.contains("SAFETY:") || text.contains("# Safety")
}

/// `no-float`: float literals and `f32`/`f64` tokens inside declared
/// `region(no-float)` spans. The regions cover the fixed-point planner
/// scoring and the CRC kernels, where one stray float re-introduces
/// the exact-tie nondeterminism PR 5 removed.
fn no_float_lint(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.regions.iter().any(|r| r.name == "no-float") {
        return;
    }
    for tok in &file.lexed.tokens {
        if !file.in_region("no-float", tok.line) {
            continue;
        }
        match &tok.kind {
            TokenKind::Number { float: true } => out.push(finding(
                file,
                tok.line,
                "no-float",
                "float literal inside a region(no-float) span".to_string(),
            )),
            TokenKind::Ident(name) if name == "f64" || name == "f32" => out.push(finding(
                file,
                tok.line,
                "no-float",
                format!("`{name}` inside a region(no-float) span"),
            )),
            _ => {}
        }
    }
}

/// `env-hygiene`: `env::var`/`env::var_os` only in the allowlisted
/// configuration seams.
fn env_hygiene_lint(file: &SourceFile, out: &mut Vec<Finding>) {
    if in_scope(&file.rel_path, &ENV_ALLOWLIST) {
        return;
    }
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if name != "env" || !followed_by_var(tokens, i) {
            continue;
        }
        out.push(finding(
            file,
            tok.line,
            "env-hygiene",
            "`std::env::var` outside ppr_sim::env / ppr-cli / ppr-bench; route \
             configuration through Scenario so runs are reproducible"
                .to_string(),
        ));
    }
}

/// Is token `i` followed by `:: var` or `:: var_os`?
fn followed_by_var(tokens: &[crate::lexer::Token], i: usize) -> bool {
    matches!(
        tokens.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct(':'))
    ) && matches!(
        tokens.get(i + 2).map(|t| &t.kind),
        Some(TokenKind::Punct(':'))
    ) && matches!(tokens.get(i + 3).map(|t| &t.kind),
            Some(TokenKind::Ident(n)) if n == "var" || n == "var_os")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse(path, src), &Config::default())
    }

    #[test]
    fn hashmap_flagged_only_in_deterministic_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check("crates/ppr-sim/src/x.rs", src).len(), 1);
        assert_eq!(check("crates/ppr-core/src/x.rs", src).len(), 1);
        assert!(check("crates/ppr-bench/src/x.rs", src).is_empty());
        assert!(check("crates/ppr-lint/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_bench_and_cli() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(check("crates/ppr-sim/src/x.rs", src).len(), 1);
        assert!(check("crates/ppr-bench/src/bin/b.rs", src).is_empty());
        assert!(check("crates/ppr-cli/src/main.rs", src).is_empty());
        // `Instant` alone (e.g. storing one passed in) is fine.
        assert!(check("crates/ppr-sim/src/x.rs", "fn f(t: Instant) {}\n").is_empty());
        assert_eq!(
            check("crates/ppr-mac/src/x.rs", "let x = SystemTime::now();\n").len(),
            1
        );
        assert_eq!(
            check("crates/ppr-core/src/x.rs", "let r = thread_rng();\n").len(),
            1
        );
    }

    #[test]
    fn event_module_must_document_its_ordering_key() {
        // Any other file is out of scope, key or no key.
        assert!(check("crates/ppr-sim/src/rxpath.rs", "fn f() {}\n").is_empty());

        let bare = "//! An event queue.\npub struct Q;\n";
        let f = check("crates/ppr-sim/src/event.rs", bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "event-key-doc");

        let documented = "//! Keys order as (time, priority, seq).\npub struct Q;\n";
        assert!(check("crates/ppr-sim/src/event.rs", documented).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_and_missing_safety() {
        let src = "fn f() { unsafe { g() } }\n";
        let f = check("crates/ppr-core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "unsafe-containment");

        // Allowlisted module without SAFETY comment: still a violation.
        let f = check("crates/ppr-phy/src/simd.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));

        // SAFETY on the preceding line, across attributes.
        let ok = "\
// SAFETY: feature checked at dispatch.
#[target_feature(enable = \"avx2\")]
unsafe fn g() {}
";
        assert!(check("crates/ppr-phy/src/simd.rs", ok).is_empty());
        // Same-line SAFETY.
        let ok2 = "let x = unsafe { p.read() }; // SAFETY: p is valid.\n";
        assert!(check("crates/ppr-phy/src/simd.rs", ok2).is_empty());
    }

    #[test]
    fn configured_unsafe_allowlist_extends_builtin() {
        let src = "// SAFETY: feature checked at dispatch.\nunsafe fn g() {}\n";
        let cfg = Config {
            unsafe_allowlist: vec!["crates/ppr-mac/src/clmul.rs".to_string()],
            ..Config::default()
        };
        // Configured module: allowed (with SAFETY), like the built-in one.
        let f = check_file(&SourceFile::parse("crates/ppr-mac/src/clmul.rs", src), &cfg);
        assert!(f.is_empty(), "{f:?}");
        // The SAFETY requirement is not waived by configuration.
        let f = check_file(
            &SourceFile::parse("crates/ppr-mac/src/clmul.rs", "unsafe fn g() {}\n"),
            &cfg,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));
        // Other modules still fail even with the config present.
        let f = check_file(&SourceFile::parse("crates/ppr-mac/src/crc.rs", src), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "unsafe-containment");
    }

    #[test]
    fn safety_scan_stops_at_code() {
        let src = "\
// SAFETY: this belongs to f, not g.
fn f() {}
unsafe fn g() {}
";
        let f = check("crates/ppr-phy/src/simd.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn no_float_only_inside_regions() {
        let src = "\
let a = 1.0;
// ppr-lint: region(no-float) begin
let b = 2;
let c = 3.0;
let d: f64 = e as f64;
// ppr-lint: region(no-float) end
let f = 4.0;
";
        let f = check("crates/ppr-core/src/dp.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.lint == "no-float"));
        assert_eq!(f[0].line, 4);
        assert_eq!(f[1].line, 5); // two findings on line 5 (f64 twice)
    }

    #[test]
    fn env_var_flagged_outside_allowlist() {
        let src = "let v = std::env::var(\"X\");\n";
        assert_eq!(check("crates/ppr-phy/src/simd.rs", src).len(), 1);
        assert!(check("crates/ppr-sim/src/env.rs", src).is_empty());
        assert!(check("crates/ppr-cli/src/main.rs", src).is_empty());
        assert!(check("crates/ppr-bench/src/lib.rs", src).is_empty());
        let os = "if std::env::var_os(\"X\").is_some() {}\n";
        assert_eq!(check("crates/ppr-sim/src/traffic.rs", os).len(), 1);
        // env::args (no var) is fine anywhere.
        assert!(check("crates/ppr-lint/src/main.rs", "let a = std::env::args();\n").is_empty());
    }

    #[test]
    fn snapshot_fields_need_docs_only_inside_regions() {
        let src = "\
pub struct Driver {
    // ppr-lint: region(snapshot-state) begin driver state
    /// snapshot: serialized — the event queue.
    q: Queue,
    out: Vec<Option<Reception>>,
    busy: Vec<u64>, // snapshot: serialized.
    // ppr-lint: region(snapshot-state) end
    scratch: Vec<u8>,
}
";
        let f = check("crates/ppr-core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "snapshot-field-doc");
        assert_eq!(f[0].line, 5); // `out` — undocumented; `scratch` is outside
    }

    #[test]
    fn snapshot_region_skips_non_field_lines() {
        let src = "\
// ppr-lint: region(snapshot-state) begin whole struct, header included
pub struct Snap {
    /// snapshot: serialized.
    pub seed: u64,
}
// ppr-lint: region(snapshot-state) end
";
        assert!(check("crates/ppr-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn checkpointed_drivers_must_declare_snapshot_regions() {
        let bare = "pub struct ReceptionDriver { q: Queue }\n";
        for path in [
            "crates/ppr-sim/src/network.rs",
            "crates/ppr-sim/src/experiments/mesh.rs",
            "crates/ppr-sim/src/adversary.rs",
        ] {
            let f = check(path, bare);
            assert!(
                f.iter().any(|x| x.lint == "snapshot-field-doc"),
                "{path}: {f:?}"
            );
        }
        // Other files may simply not opt in.
        assert!(check("crates/ppr-sim/src/event.rs", "// (time, priority, seq)\n").is_empty());
    }

    fn check_readme(path: &str, src: &str, readme: &str) -> Vec<Finding> {
        check_file_with_readme(
            &SourceFile::parse(path, src),
            &Config::default(),
            Some(readme),
        )
    }

    #[test]
    fn axis_keys_extracted_from_the_table() {
        // One-line tuple, multi-line tuple, parenthesis inside a
        // description, and a `\`-continued multi-line literal.
        let src = "\
pub const SCENARIO_KEYS: &[(&str, &str)] = &[
    (\"duration\", \"positive seconds\"),
    (
        \"backend\",
        \"chip (dsp reserved, not yet wired)\",
    ),
    (
        \"jammer\",
        \"off | pulse:PERIOD:DUTY, \\
         e.g. jammer=pulse:32768:0.2\",
    ),
];
";
        let keys = scenario_axis_keys(src);
        assert_eq!(
            keys,
            vec![
                (2, "duration".to_string()),
                (4, "backend".to_string()),
                (8, "jammer".to_string()),
            ]
        );
        assert!(scenario_axis_keys("pub struct Scenario;\n").is_empty());
    }

    #[test]
    fn axis_doc_flags_undocumented_axes() {
        let src = "\
pub const SCENARIO_KEYS: &[(&str, &str)] = &[
    (\"seed\", \"u64\"),
    (\"jammer\", \"off | react:DELAY\"),
];
";
        let documented = "| `seed` | u64 |\n| `jammer` | jamming model |\n";
        assert!(check_readme(SCENARIO_FILE, src, documented).is_empty());

        let partial = "| `seed` | u64 |\n";
        let f = check_readme(SCENARIO_FILE, src, partial);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "axis-doc");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("jammer"));

        // Only the scenario module is in scope, and without README text
        // (plain `check_file`) the lint is off entirely.
        assert!(check_readme("crates/ppr-sim/src/x.rs", src, "").is_empty());
        assert!(check(SCENARIO_FILE, src).is_empty());

        // A scenario module that lost its table is itself a violation.
        let f = check_readme(SCENARIO_FILE, "pub struct Scenario;\n", documented);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "axis-doc");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn directive_errors_surface_as_findings() {
        let src = "// ppr-lint: allow(not-a-lint)\nlet x = 1;\n";
        let f = check("crates/ppr-core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "directive");
    }

    #[test]
    fn words_in_comments_and_strings_never_fire() {
        let src = "\
// HashMap, unsafe, thread_rng, Instant::now — prose only
let s = \"std::env::var HashMap 3.0\";
";
        assert!(check("crates/ppr-sim/src/x.rs", src).is_empty());
    }
}
