//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The lints in this crate are *lexical*: they match token sequences
//! (`HashMap`, `unsafe`, `env :: var`, float literals), never types or
//! name resolution. That is only sound if the lexer reliably separates
//! code from non-code — a `HashMap` inside a doc comment, a string
//! literal or a `#[cfg]`-ed out... no, the last one *is* code — must
//! never fire a lint, and a float literal must never be confused with a
//! range expression (`0..l`) or an integer method call (`1.max(2)`).
//!
//! So the lexer handles, with care, exactly the hard cases that matter
//! for that separation:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//!   preserved as [`Comment`]s because lint directives
//!   (`// ppr-lint: ...`) and `// SAFETY:` justifications live in them;
//! * string, raw string (`r#"…"#`, any number of `#`s), byte string,
//!   byte and char literals — skipped, with correct `'a'`-char versus
//!   `'a`-lifetime disambiguation;
//! * numeric literals with radix prefixes, `_` separators, exponents
//!   and type suffixes, classified int-versus-float the way rustc does
//!   (`0..l` lexes as int + range, `1.max` as int + dot + ident,
//!   `2.`, `1e9` and `3.5f32` as floats);
//! * identifiers (including raw `r#ident`) and single-char punctuation.
//!
//! Everything else (token *meaning*) is the lint layer's problem.

/// One code token: what the lints actually match against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe` arrives as `Ident("unsafe")`).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// Numeric literal; `float` distinguishes `2.0`/`1e9` from `2`.
    Number {
        /// True for float literals (fractional part, exponent, or an
        /// `f32`/`f64` suffix).
        float: bool,
    },
    /// String, raw-string, byte-string, byte or char literal (contents
    /// deliberately dropped: literals never trigger lints).
    Literal,
}

/// A code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment with its text and the lines it spans (inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (> `line` only for multi-line
    /// block comments).
    pub end_line: u32,
}

/// The lexed form of one source file: code tokens and comments on
/// separate tracks.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if `line` carries at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search keeps the engine's
        // per-finding suppression scans cheap even on big files.
        self.tokens.binary_search_by(|t| t.line.cmp(&line)).is_ok()
    }

    /// The first code token on `line`, if any.
    pub fn first_token_on_line(&self, line: u32) -> Option<&Token> {
        let idx = self.tokens.partition_point(|t| t.line < line);
        self.tokens.get(idx).filter(|t| t.line == line)
    }
}

/// Lexes one file. Unterminated literals or comments are tolerated (the
/// remainder of the file is consumed as that literal/comment) — the
/// real compiler rejects such files anyway, and the linter must not
/// panic on them.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_follows(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_literal(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime(line);
                }
                'r' if self.raw_string_follows(1) => {
                    self.bump();
                    self.raw_string_literal(line);
                }
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier r#ident.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.char_or_lifetime(line),
                _ if is_ident_start(Some(c)) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push_token(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    /// `r` already seen at offset 0; is what follows `#*"` (raw string)?
    fn raw_string_follows(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
        });
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, line);
    }

    fn raw_string_literal(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_token(TokenKind::Literal, line);
    }

    /// `'` at position 0: a char literal or a lifetime. `'x'` (ident
    /// char then closing quote) and `'\…'` are char literals; `'ident`
    /// with no closing quote is a lifetime (emitted as punct + ident).
    fn char_or_lifetime(&mut self, line: u32) {
        if is_ident_start(self.peek(1)) && self.peek(2) != Some('\'') {
            // Lifetime: consume the quote, let ident() take the rest.
            self.bump();
            self.push_token(TokenKind::Punct('\''), line);
            return;
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Ident(name), line);
    }

    fn number(&mut self, line: u32) {
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: no fraction or exponent possible; consume
            // digits, separators and any suffix.
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Number { float: false }, line);
            return;
        }
        self.eat_digits();
        // Fractional part: a `.` begins one only if NOT followed by a
        // second `.` (range `0..n`) or an identifier (method `1.max(2)`)
        // — the same disambiguation rustc applies.
        if self.peek(0) == Some('.') && self.peek(1) != Some('.') && !is_ident_start(self.peek(1)) {
            float = true;
            self.bump();
            self.eat_digits();
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digits_at = if sign { 2 } else { 1 };
            if self.peek(digits_at).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.bump();
                if sign {
                    self.bump();
                }
                self.eat_digits();
            }
        }
        // Type suffix (`u32`, `f64`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        self.push_token(TokenKind::Number { float }, line);
    }

    fn eat_digits(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn floats(src: &str) -> usize {
        lex(src)
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Number { float: true }))
            .count()
    }

    #[test]
    fn comments_and_strings_hide_code_words() {
        let src = r##"
            // HashMap in a comment
            /* unsafe in a block /* nested */ still comment */
            let s = "HashMap::new() unsafe 1.0";
            let r = r#"thread_rng"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert_eq!(floats(src), 0);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn float_versus_range_versus_method() {
        assert_eq!(floats("for i in 0..l {}"), 0);
        assert_eq!(floats("let x = 1.max(2);"), 0);
        assert_eq!(floats("let x = 2.0;"), 1);
        assert_eq!(floats("let x = 2.;"), 1);
        assert_eq!(floats("let x = 1e9;"), 1);
        assert_eq!(floats("let x = 1_000e-3;"), 1);
        assert_eq!(floats("let x = 3f64;"), 1);
        assert_eq!(floats("let x = 3.5f32;"), 1);
        assert_eq!(floats("let x = 0xEDB8_8320u32;"), 0);
        assert_eq!(floats("let x = 10u64;"), 0);
        // Hex `E` is a digit, not an exponent.
        assert_eq!(floats("let x = 0x1E;"), 0);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If `'a` were lexed as an unterminated char literal the rest of
        // the file would be swallowed and `HashMap` would disappear.
        let ids = idents("fn f<'a>(x: &'a str) { let m: HashMap<u8, u8>; let c = 'x'; }");
        assert!(ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"a".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let src = "let a = r##\"quote \" and # inside\"##; let b: HashSet<u8>;";
        let ids = idents(src);
        assert!(ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn byte_literals_are_literals() {
        let src = "let a = b\"bytes\"; let b = b'x'; let c = br#\"raw\"#; unsafe {}";
        let lexed = lex(src);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3);
        assert!(idents(src).contains(&"unsafe".to_string()));
    }

    #[test]
    fn raw_idents_are_idents() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "let a = 1;\nlet b = 2;\n// c\nlet d = 3;\n";
        let lexed = lex(src);
        assert!(lexed.line_has_code(1));
        assert!(lexed.line_has_code(2));
        assert!(!lexed.line_has_code(3));
        assert!(lexed.line_has_code(4));
        assert_eq!(lexed.comments[0].line, 3);
        assert_eq!(
            lexed.first_token_on_line(4).map(|t| &t.kind),
            Some(&TokenKind::Ident("let".to_string()))
        );
    }

    #[test]
    fn multiline_block_comment_spans() {
        let src = "/* a\nb\nc */ let x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert!(lexed.line_has_code(3));
    }
}
