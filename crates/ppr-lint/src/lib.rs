//! `ppr-lint` — the workspace invariant checker.
//!
//! The correctness story of this reproduction rests on contracts no
//! compiler checks: bit-identical parity between the bool/packed/SIMD
//! backends, seeded per-reception RNG streams, Q23.40 fixed-point
//! planner scoring (PR 5 exists *because* `f64` sum association flipped
//! exact cost ties), and `unsafe` confined to `ppr_phy::simd`. This
//! crate turns those conventions into CI-enforced invariants: a
//! hand-rolled lexer ([`lexer`]), the lint definitions ([`lints`]),
//! directive/region extraction ([`source`]), the pinned-debt baseline
//! ([`config`]) and the driver ([`engine`]).
//!
//! Run it with `cargo run -p ppr-lint`; see `docs/ARCHITECTURE.md`
//! ("Invariants & lints") for what each lint guards and why.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod source;

pub use config::{BaselineEntry, Config};
pub use engine::{run, Report};
pub use lints::{Finding, LINT_NAMES};
