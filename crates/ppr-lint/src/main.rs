//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p ppr-lint                  # check the workspace
//! cargo run -p ppr-lint -- --verbose     # also list suppressed/baselined
//! cargo run -p ppr-lint -- --fix-baseline  # pin current debt in ppr-lint.toml
//! cargo run -p ppr-lint -- --list        # describe the lints
//! ```
//!
//! Exits 0 when no finding fails (suppressed and baselined findings are
//! reported but do not fail), 1 on failing findings, 2 on usage or I/O
//! errors.

use ppr_lint::{config::Config, engine, lints};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    fix_baseline: bool,
    list: bool,
    verbose: bool,
}

fn usage() -> String {
    "usage: ppr-lint [--root DIR] [--config FILE] [--fix-baseline] [--list] [--verbose]".to_string()
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace this binary was built from. Robust
    // under `cargo run` from any subdirectory, and overridable for
    // linting fixture trees.
    let mut args = Args {
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        config: None,
        fix_baseline: false,
        list: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| format!("--root needs a value\n{}", usage()))?,
                );
            }
            "--config" => {
                args.config =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        format!("--config needs a value\n{}", usage())
                    })?));
            }
            "--fix-baseline" => args.fix_baseline = true,
            "--list" => args.list = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ppr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        println!("ppr-lint enforces these invariants:");
        for name in lints::LINT_NAMES {
            println!("  {name}");
        }
        println!("suppress one occurrence with `// ppr-lint: allow(<name>) <why>`;");
        println!("pin pre-existing debt with `--fix-baseline` (writes ppr-lint.toml).");
        return ExitCode::SUCCESS;
    }

    let root = match args.root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ppr-lint: bad --root {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let config_path = args.config.unwrap_or_else(|| root.join("ppr-lint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ppr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match engine::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ppr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.fix_baseline {
        let mut new_cfg = report.as_baseline();
        // The baseline is regenerated; the unsafe allowlist is policy,
        // not debt, and carries over verbatim.
        new_cfg.unsafe_allowlist = cfg.unsafe_allowlist.clone();
        let n = new_cfg.baseline.len();
        if let Err(e) = std::fs::write(&config_path, new_cfg.render()) {
            eprintln!("ppr-lint: writing {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ppr-lint: wrote {} with {n} baseline entr{}",
            config_path.display(),
            if n == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    print!("{}", report.render(args.verbose));
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
