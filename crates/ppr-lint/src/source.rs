//! One parsed source file: lexed tokens plus the lint directives and
//! regions declared in its comments.
//!
//! Directives are comments of the form `// ppr-lint: <command>`:
//!
//! * `// ppr-lint: allow(<lint>[, <lint>…]) [prose]` — suppresses
//!   findings of the named lints on the directive's own line, or (for a
//!   comment-only line) on the next line that carries code. Suppressed
//!   findings are counted and reported, never silently dropped.
//! * `// ppr-lint: region(<name>) begin [prose]` /
//!   `// ppr-lint: region(<name>) end [prose]` — delimit a named region
//!   (the `no-float` lint only checks inside `region(no-float)` spans).
//!   Regions of the same name nest; an unmatched begin/end is itself a
//!   violation (lint `directive`).
//!
//! Anything after the closing parenthesis (and the begin/end keyword) is
//! free prose — directives are expected to carry a justification.

use crate::lexer::{lex, Lexed};

/// A suppression declared in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the directive comment starts on.
    pub line: u32,
    /// The lints it suppresses.
    pub lints: Vec<String>,
}

/// A named `begin`..`end` region (inclusive line span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name (e.g. `no-float`).
    pub name: String,
    /// Line of the `begin` directive.
    pub start: u32,
    /// Line of the `end` directive.
    pub end: u32,
}

/// A malformed or unmatched directive, reported as a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveError {
    /// Line of the offending directive.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// A source file in the form the lints consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// Raw source lines (for diagnostic context snippets).
    pub lines: Vec<String>,
    /// Suppression directives.
    pub allows: Vec<Allow>,
    /// Closed regions.
    pub regions: Vec<Region>,
    /// Malformed/unmatched directives.
    pub directive_errors: Vec<DirectiveError>,
}

impl SourceFile {
    /// Lexes `text` and extracts its directives.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let mut allows = Vec::new();
        let mut regions = Vec::new();
        let mut errors = Vec::new();
        // One stack per region name would be overkill: a single stack
        // with name matching on `end` keeps nesting honest.
        let mut open: Vec<(String, u32)> = Vec::new();

        for comment in &lexed.comments {
            let Some(cmd) = directive_text(&comment.text) else {
                continue;
            };
            match parse_directive(cmd) {
                Ok(Directive::Allow(lints)) => allows.push(Allow {
                    line: comment.line,
                    lints,
                }),
                Ok(Directive::RegionBegin(name)) => open.push((name, comment.line)),
                Ok(Directive::RegionEnd(name)) => match open.last() {
                    Some((open_name, start)) if *open_name == name => {
                        let start = *start;
                        open.pop();
                        regions.push(Region {
                            name,
                            start,
                            end: comment.line,
                        });
                    }
                    Some((open_name, start)) => errors.push(DirectiveError {
                        line: comment.line,
                        message: format!(
                            "region({name}) end does not match region({open_name}) begun on line {start}"
                        ),
                    }),
                    None => errors.push(DirectiveError {
                        line: comment.line,
                        message: format!("region({name}) end with no matching begin"),
                    }),
                },
                Err(msg) => errors.push(DirectiveError {
                    line: comment.line,
                    message: msg,
                }),
            }
        }
        for (name, line) in open {
            errors.push(DirectiveError {
                line,
                message: format!("region({name}) begin is never closed"),
            });
        }

        SourceFile {
            rel_path: rel_path.to_string(),
            lexed,
            lines: text.lines().map(str::to_string).collect(),
            allows,
            regions,
            directive_errors: errors,
        }
    }

    /// The trimmed source of `line` (1-based), truncated for reports.
    pub fn context(&self, line: u32) -> String {
        let Some(text) = self.lines.get(line as usize - 1) else {
            return String::new();
        };
        let trimmed = text.trim();
        if trimmed.chars().count() > 90 {
            let cut: String = trimmed.chars().take(87).collect();
            format!("{cut}...")
        } else {
            trimmed.to_string()
        }
    }

    /// True if `line` falls inside a closed region named `name`.
    pub fn in_region(&self, name: &str, line: u32) -> bool {
        self.regions
            .iter()
            .any(|r| r.name == name && r.start <= line && line <= r.end)
    }

    /// The first line after `from` that carries code (for comment-only
    /// suppression lines, the line they apply to).
    pub fn next_code_line(&self, from: u32) -> Option<u32> {
        let idx = self.lexed.tokens.partition_point(|t| t.line <= from);
        self.lexed.tokens.get(idx).map(|t| t.line)
    }
}

enum Directive {
    Allow(Vec<String>),
    RegionBegin(String),
    RegionEnd(String),
}

/// Extracts the directive command from a comment, *anchored*: the
/// comment (after its `//`/`/*` sigils and whitespace) must begin with
/// `ppr-lint:`. Prose that merely mentions the marker mid-sentence —
/// like this crate's own documentation — is not a directive.
fn directive_text(comment: &str) -> Option<&str> {
    let t = comment.trim_start();
    let t = t
        .strip_prefix("//")
        .or_else(|| t.strip_prefix("/*"))
        .unwrap_or(t);
    let t = t.trim_start_matches(['/', '!']).trim_start();
    Some(t.strip_prefix("ppr-lint:")?.trim())
}

/// Parses the text after `ppr-lint:`.
fn parse_directive(cmd: &str) -> Result<Directive, String> {
    if let Some(rest) = cmd.strip_prefix("allow(") {
        let (inner, _prose) = rest
            .split_once(')')
            .ok_or_else(|| format!("unterminated allow(...) in {cmd:?}"))?;
        let lints: Vec<String> = inner
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if lints.is_empty() {
            return Err(format!("allow() names no lints in {cmd:?}"));
        }
        return Ok(Directive::Allow(lints));
    }
    if let Some(rest) = cmd.strip_prefix("region(") {
        let (name, after) = rest
            .split_once(')')
            .ok_or_else(|| format!("unterminated region(...) in {cmd:?}"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("region() names no region in {cmd:?}"));
        }
        let keyword = after.split_whitespace().next().unwrap_or("");
        return match keyword {
            "begin" => Ok(Directive::RegionBegin(name.to_string())),
            "end" => Ok(Directive::RegionEnd(name.to_string())),
            _ => Err(format!(
                "region({name}) must be followed by `begin` or `end`, got {keyword:?}"
            )),
        };
    }
    Err(format!(
        "unknown directive {cmd:?} (expected allow(...) or region(...) begin|end)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directives_are_extracted() {
        let src = "\
let a = 1; // ppr-lint: allow(determinism) timing assertion only
// ppr-lint: allow(env-hygiene, unsafe-containment)
let b = 2;
";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[0].lints, vec!["determinism"]);
        assert_eq!(f.allows[1].lints, vec!["env-hygiene", "unsafe-containment"]);
        assert_eq!(f.next_code_line(2), Some(3));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn regions_close_and_nest() {
        let src = "\
// ppr-lint: region(no-float) begin integer scoring
let a = 1;
// ppr-lint: region(no-float) begin inner
let b = 2;
// ppr-lint: region(no-float) end inner
// ppr-lint: region(no-float) end
let c = 3.0;
";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.regions.len(), 2);
        assert!(f.in_region("no-float", 2));
        assert!(f.in_region("no-float", 4));
        assert!(!f.in_region("no-float", 7));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn unmatched_and_malformed_directives_error() {
        let src = "\
// ppr-lint: region(no-float) begin
// ppr-lint: region(other) end
// ppr-lint: allow()
// ppr-lint: frobnicate(x)
";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.directive_errors.len(), 4, "{:?}", f.directive_errors);
    }

    #[test]
    fn context_is_trimmed() {
        let f = SourceFile::parse("x.rs", "    let x = 1;\n");
        assert_eq!(f.context(1), "let x = 1;");
        assert_eq!(f.context(9), "");
    }
}
