//! `ppr-lint.toml`: the pinned-debt baseline and the configured
//! `unsafe` allowlist.
//!
//! A baseline entry is one pre-existing violation, recorded as
//! `"path:line:lint"` with the path relative to the workspace root.
//! Violations matching a baseline entry are reported but do not fail
//! the run — debt is *pinned*, not ignored: removing the offending code
//! leaves a stale entry the tool reports, and new violations (different
//! file, line or lint) still fail. `--fix-baseline` regenerates the
//! file from the current findings.
//!
//! `unsafe-allowlist` entries are workspace-relative path prefixes that
//! may contain `unsafe`, *in addition to* the built-in allowlist in
//! [`crate::lints`]. Allowlisting a module never waives the per-site
//! `// SAFETY:` requirement. Growing this list is a deliberate,
//! reviewed act — which is exactly why it lives in the checked-in
//! config rather than in a code edit to the lint tool.
//!
//! The format is a deliberately tiny TOML subset — top-level
//! `baseline = [ "…", … ]` / `unsafe-allowlist = [ "…", … ]` string
//! arrays plus `#` comments — parsed by hand because the workspace
//! vendors no TOML crate. Line numbers in a baseline go stale when
//! files are edited above an entry; that is the standard trade-off of
//! line-keyed baselines, and the answer is to re-run `--fix-baseline`
//! (the diff shows exactly which debt moved).

use std::fmt;
use std::path::Path;

/// One pinned pre-existing violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the pinned violation.
    pub line: u32,
    /// Lint name (e.g. `determinism`).
    pub lint: String,
}

impl fmt::Display for BaselineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.path, self.line, self.lint)
    }
}

impl BaselineEntry {
    /// Parses `path:line:lint` (path may itself contain `:` on exotic
    /// systems, so the *last two* colon-separated fields are taken as
    /// line and lint).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (rest, lint) = s
            .rsplit_once(':')
            .ok_or_else(|| format!("malformed baseline entry {s:?} (want path:line:lint)"))?;
        let (path, line) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("malformed baseline entry {s:?} (want path:line:lint)"))?;
        let line: u32 = line
            .parse()
            .map_err(|_| format!("non-numeric line in baseline entry {s:?}"))?;
        if path.is_empty() || lint.is_empty() {
            return Err(format!("empty field in baseline entry {s:?}"));
        }
        Ok(BaselineEntry {
            path: path.to_string(),
            line,
            lint: lint.to_string(),
        })
    }
}

/// The parsed configuration file.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Pinned pre-existing violations.
    pub baseline: Vec<BaselineEntry>,
    /// Path prefixes allowed to contain `unsafe`, on top of the
    /// built-in allowlist (`// SAFETY:` comments are still required at
    /// every site).
    pub unsafe_allowlist: Vec<String>,
}

/// Which top-level array a config line belongs to.
#[derive(Debug, Clone, Copy)]
enum ArrayKey {
    Baseline,
    UnsafeAllowlist,
}

impl ArrayKey {
    fn name(self) -> &'static str {
        match self {
            ArrayKey::Baseline => "baseline",
            ArrayKey::UnsafeAllowlist => "unsafe-allowlist",
        }
    }
}

impl Config {
    /// Loads the config from `path`; a missing file is an empty config
    /// (the tool runs baseline-free by default).
    pub fn load(path: &Path) -> Result<Config, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut open: Option<ArrayKey> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = match open {
                Some(key) => (key, line.as_str()),
                None => {
                    // `unsafe-allowlist` must be tried first: neither key
                    // is a prefix of the other today, but keeping the
                    // longer match first is cheap insurance.
                    let key = if line.starts_with("unsafe-allowlist") {
                        ArrayKey::UnsafeAllowlist
                    } else if line.starts_with("baseline") {
                        ArrayKey::Baseline
                    } else {
                        return Err(format!(
                            "line {}: unsupported config line {line:?} (only `baseline = [...]`, \
                             `unsafe-allowlist = [...]` and comments)",
                            idx + 1
                        ));
                    };
                    let rest = line[key.name().len()..].trim_start();
                    let rest = rest
                        .strip_prefix('=')
                        .ok_or_else(|| format!("line {}: expected `{} = [`", idx + 1, key.name()))?
                        .trim_start();
                    let rest = rest.strip_prefix('[').ok_or_else(|| {
                        format!("line {}: expected `{} = [`", idx + 1, key.name())
                    })?;
                    (key, rest)
                }
            };
            let closed = consume_array_items(rest, key, &mut cfg, idx)?;
            open = if closed { None } else { Some(key) };
        }
        if let Some(key) = open {
            return Err(format!("unterminated {} array", key.name()));
        }
        Ok(cfg)
    }

    /// Renders the config back to the file format (`--fix-baseline`).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ppr-lint baseline: pre-existing violations pinned as known debt.\n\
             # Regenerate with `cargo run -p ppr-lint -- --fix-baseline`; entries\n\
             # are `path:line:lint` relative to the workspace root.\n",
        );
        if self.baseline.is_empty() {
            out.push_str("baseline = []\n");
        } else {
            out.push_str("baseline = [\n");
            let mut entries = self.baseline.clone();
            entries.sort();
            for e in entries {
                out.push_str(&format!("    \"{e}\",\n"));
            }
            out.push_str("]\n");
        }
        out.push_str(
            "\n# Modules (path prefixes) allowed to contain `unsafe`, on top of the\n\
             # built-in allowlist; every site still needs a `// SAFETY:` comment.\n",
        );
        if self.unsafe_allowlist.is_empty() {
            out.push_str("unsafe-allowlist = []\n");
        } else {
            out.push_str("unsafe-allowlist = [\n");
            let mut entries = self.unsafe_allowlist.clone();
            entries.sort();
            for e in entries {
                out.push_str(&format!("    \"{e}\",\n"));
            }
            out.push_str("]\n");
        }
        out
    }
}

/// Strips a `#` comment, respecting `"…"` strings (entries never
/// contain `"` so escape handling is unnecessary).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Consumes quoted entries from one line of an array body into the
/// field `key` selects; returns `true` when the closing `]` was seen.
fn consume_array_items(
    mut rest: &str,
    key: ArrayKey,
    cfg: &mut Config,
    idx: usize,
) -> Result<bool, String> {
    loop {
        rest = rest.trim_start_matches([' ', '\t', ',']);
        if rest.is_empty() {
            return Ok(false);
        }
        if let Some(after) = rest.strip_prefix(']') {
            if !after.trim().is_empty() {
                return Err(format!("line {}: trailing content after `]`", idx + 1));
            }
            return Ok(true);
        }
        let inner = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("line {}: expected quoted {} entry", idx + 1, key.name()))?;
        let (entry, after) = inner
            .split_once('"')
            .ok_or_else(|| format!("line {}: unterminated string", idx + 1))?;
        match key {
            ArrayKey::Baseline => cfg.baseline.push(BaselineEntry::parse(entry)?),
            ArrayKey::UnsafeAllowlist => {
                if entry.is_empty() {
                    return Err(format!("line {}: empty unsafe-allowlist entry", idx + 1));
                }
                cfg.unsafe_allowlist.push(entry.to_string());
            }
        }
        rest = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cfg = Config {
            baseline: vec![
                BaselineEntry::parse("crates/a/src/x.rs:12:determinism").unwrap(),
                BaselineEntry::parse("src/lib.rs:3:env-hygiene").unwrap(),
            ],
            unsafe_allowlist: vec!["crates/b/src/intrinsics.rs".to_string()],
        };
        let text = cfg.render();
        let back = Config::parse(&text).unwrap();
        let mut want = cfg.baseline.clone();
        want.sort();
        assert_eq!(back.baseline, want);
        assert_eq!(back.unsafe_allowlist, cfg.unsafe_allowlist);
    }

    #[test]
    fn empty_array_and_comments() {
        let cfg = Config::parse("# header\nbaseline = []  # none\n").unwrap();
        assert!(cfg.baseline.is_empty());
        let cfg = Config::parse("baseline = [\"a.rs:1:determinism\"]\n").unwrap();
        assert_eq!(cfg.baseline.len(), 1);
    }

    #[test]
    fn unsafe_allowlist_parses() {
        let cfg = Config::parse(
            "baseline = []\n\
             unsafe-allowlist = [\n\
                 \"crates/x/src/simd.rs\",  # kernels\n\
                 \"crates/y/src/clmul.rs\",\n\
             ]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.unsafe_allowlist,
            vec!["crates/x/src/simd.rs", "crates/y/src/clmul.rs"]
        );
        // The key alone, no baseline, is valid too.
        let cfg = Config::parse("unsafe-allowlist = []\n").unwrap();
        assert!(cfg.unsafe_allowlist.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Config::parse("baseline = [\n\"a.rs:1:determinism\"\n").is_err());
        assert!(Config::parse("hashes = 3\n").is_err());
        assert!(Config::parse("baseline = [\"no-line-field\"]\n").is_err());
        assert!(Config::parse("unsafe-allowlist = [\"\"]\n").is_err());
        assert!(Config::parse("unsafe-allowlist = [\n\"a.rs\"\n").is_err());
        assert!(BaselineEntry::parse("a.rs:x:determinism").is_err());
        assert!(BaselineEntry::parse("a.rs:3:").is_err());
    }

    #[test]
    fn entry_display_matches_parse() {
        let e = BaselineEntry::parse("crates/a.rs:7:no-float").unwrap();
        assert_eq!(e.to_string(), "crates/a.rs:7:no-float");
        assert_eq!(e.line, 7);
        assert_eq!(e.lint, "no-float");
    }
}
