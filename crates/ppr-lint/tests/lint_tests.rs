//! Integration tests: fixture workspaces with known violations, the
//! suppression and baseline round-trips at the CLI level, and the
//! self-check asserting the live workspace is clean.

use ppr_lint::{engine, Config};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_lint_fires_on_its_fixture() {
    let report = engine::run(&fixture("violations"), &Config::default()).unwrap();
    assert!(report.suppressed.is_empty());
    assert!(report.baselined.is_empty());

    let hits: Vec<(String, u32, &str)> = report
        .failing
        .iter()
        .map(|f| (f.path.clone(), f.line, f.lint))
        .collect();
    // One representative (file, line, lint) per lint.
    for want in [
        ("crates/ppr-sim/src/det_collections.rs", 2, "determinism"),
        ("crates/ppr-core/src/det_time.rs", 3, "determinism"),
        ("crates/ppr-core/src/det_time.rs", 4, "determinism"),
        (
            "crates/ppr-mac/src/unsafe_outside.rs",
            4,
            "unsafe-containment",
        ),
        ("crates/ppr-phy/src/simd.rs", 3, "unsafe-containment"),
        ("crates/ppr-core/src/float_region.rs", 4, "no-float"),
        ("crates/ppr-channel/src/env_use.rs", 3, "env-hygiene"),
    ] {
        assert!(
            hits.iter()
                .any(|(p, l, n)| p == want.0 && *l == want.1 && *n == want.2),
            "missing finding {want:?} in {hits:?}"
        );
    }
    // Per-lint totals stay pinned so a lint cannot silently widen or
    // narrow: 4 HashMap/HashSet mentions + Instant::now + thread_rng.
    let count = |lint: &str| report.failing.iter().filter(|f| f.lint == lint).count();
    assert_eq!(count("determinism"), 6);
    assert_eq!(count("unsafe-containment"), 2);
    assert_eq!(count("no-float"), 2); // `f64` token + float literal
    assert_eq!(count("env-hygiene"), 1);
    assert_eq!(count("directive"), 0);
}

#[test]
fn suppressions_silence_but_are_counted() {
    let report = engine::run(&fixture("suppressed"), &Config::default()).unwrap();
    assert!(report.is_clean(), "{}", report.render(true));
    // One comment-line suppression + one same-line suppression, both
    // covering a `HashMap` mention.
    assert_eq!(report.suppressed.len(), 3, "{:?}", report.suppressed);
    assert!(report.suppressed.iter().all(|f| f.lint == "determinism"));
}

#[test]
fn baseline_round_trip_pins_and_then_goes_stale() {
    let root = fixture("violations");
    let clean = engine::run(&root, &Config::default()).unwrap();
    assert!(!clean.is_clean());

    // Pin everything: the same run under the generated baseline passes.
    // Entries are deduped by (path, line, lint) — float_region.rs has two
    // no-float findings on one line — so compare against the unique set.
    let unique: std::collections::BTreeSet<_> = clean
        .failing
        .iter()
        .map(|f| (f.path.clone(), f.line, f.lint))
        .collect();
    let pinned_cfg = clean.as_baseline();
    assert_eq!(pinned_cfg.baseline.len(), unique.len());
    let pinned = engine::run(&root, &pinned_cfg).unwrap();
    assert!(pinned.is_clean(), "{}", pinned.render(true));
    assert_eq!(pinned.baselined.len(), clean.failing.len());
    assert!(pinned.stale_baseline.is_empty());

    // The config text itself round-trips through the TOML subset.
    let reparsed = Config::parse(&pinned_cfg.render()).unwrap();
    assert_eq!(reparsed.baseline, {
        let mut b = pinned_cfg.baseline.clone();
        b.sort();
        b
    });

    // A baseline entry for debt that no longer exists is reported stale
    // but does not fail the run.
    let mut cfg_extra = pinned_cfg.clone();
    cfg_extra
        .baseline
        .push(ppr_lint::BaselineEntry::parse("crates/ppr-sim/src/gone.rs:9:determinism").unwrap());
    let stale = engine::run(&root, &cfg_extra).unwrap();
    assert!(stale.is_clean());
    assert_eq!(stale.stale_baseline.len(), 1);
}

/// The CLI surface: exit codes, --fix-baseline writing a config that
/// makes the next run pass.
#[test]
fn cli_exit_codes_and_fix_baseline() {
    let bin = env!("CARGO_BIN_EXE_ppr-lint");
    let tmp = std::env::temp_dir().join(format!("ppr-lint-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let cfg_path = tmp.join("ppr-lint.toml");

    // Violations, no baseline: nonzero exit, file:line diagnostics.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture("violations"))
        .arg("--config")
        .arg(&cfg_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/ppr-channel/src/env_use.rs:3: [env-hygiene]"),
        "{stdout}"
    );

    // --fix-baseline pins the debt...
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture("violations"))
        .arg("--config")
        .arg(&cfg_path)
        .arg("--fix-baseline")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(cfg_path.exists());

    // ...and the rerun under it exits 0 while still counting the debt.
    let out = Command::new(bin)
        .args(["--root"])
        .arg(fixture("violations"))
        .arg("--config")
        .arg(&cfg_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 failing"), "{stdout}");
    assert!(!stdout.contains(" 0 baselined"), "{stdout}");

    let _ = std::fs::remove_dir_all(&tmp);
}

/// The acceptance gate: the live workspace is clean, with no pinned
/// debt at all for the determinism and unsafe-containment invariants
/// (suppressions are allowed — they are visible and justified in-line).
#[test]
fn live_workspace_is_clean() {
    let root = workspace_root().canonicalize().unwrap();
    let cfg = Config::load(&root.join("ppr-lint.toml")).unwrap();
    assert!(
        !cfg.baseline
            .iter()
            .any(|e| e.lint == "determinism" || e.lint == "unsafe-containment"),
        "determinism/unsafe-containment debt must be fixed, not pinned"
    );
    let report = engine::run(&root, &cfg).unwrap();
    assert!(report.is_clean(), "\n{}", report.render(false));
    assert!(
        report.stale_baseline.is_empty(),
        "{:?}",
        report.stale_baseline
    );
    // The walk actually saw the workspace (guard against a silent
    // wrong-root no-op making this test vacuous).
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}
