//! Fixture: allowlisted module, but an unjustified unsafe site.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
