//! Fixture: wall clock and OS randomness in protocol code.
pub fn elapsed() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    let _r = thread_rng();
    t0.elapsed()
}
