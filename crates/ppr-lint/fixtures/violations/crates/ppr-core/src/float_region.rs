//! Fixture: float tokens inside a declared no-float span.
pub fn score(x: i64) -> i64 {
    // ppr-lint: region(no-float) begin
    let bad = (x as f64) * 2.0;
    // ppr-lint: region(no-float) end
    bad as i64
}
