//! Fixture: unsafe outside the allowlisted module set.
pub fn peek(p: *const u8) -> u8 {
    // SAFETY: a justification does not move a module onto the allowlist.
    unsafe { *p }
}
