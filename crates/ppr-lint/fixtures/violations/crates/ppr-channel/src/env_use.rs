//! Fixture: environment read outside the configuration seams.
pub fn knob() -> Option<String> {
    std::env::var("PPR_SECRET_KNOB").ok()
}
