//! Fixture: hashed collections in a deterministic crate.
use std::collections::HashMap;

pub fn build() -> HashMap<u32, u32> {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1u32);
    HashMap::new()
}
