//! Fixture: every violation carries a justified suppression.
// ppr-lint: allow(determinism) — fixture exercising comment-line scope
use std::collections::HashMap;

pub fn build() -> HashMap<u32, u32> { // ppr-lint: allow(determinism) — same-line scope
    HashMap::new() // ppr-lint: allow(determinism) — same-line scope
}
