//! # PPR: Partial Packet Recovery for Wireless Networks
//!
//! A from-scratch Rust reproduction of *"PPR: Partial Packet Recovery for
//! Wireless Networks"* (Jamieson & Balakrishnan, SIGCOMM 2007 /
//! MIT-CSAIL-TR-2007-008).
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! * [`phy`] — an 802.15.4 (Zigbee) DSSS/MSK software modem that attaches a
//!   **SoftPHY** confidence hint (Hamming distance to the decoded codeword)
//!   to every group of decoded bits, plus preamble/**postamble** frame
//!   synchronization with sample-buffer rollback.
//! * [`channel`] — indoor radio propagation: log-distance path loss,
//!   shadowing, AWGN, and per-chip SINR under concurrent (colliding)
//!   transmissions; both a fast chip-flip backend and a full sample-level
//!   DSP backend.
//! * [`mac`] — framing (header + replicated trailer + postamble), CRC-32 /
//!   CRC-16, carrier sense, and the three §7.2 delivery schemes
//!   (packet CRC, fragmented CRC, PPR).
//! * [`core`] — the paper's contribution: the SoftPHY interface contract,
//!   run-length representation, the PP-ARQ chunking dynamic program
//!   (Eqs. 4–5) and the full PP-ARQ retransmission protocol.
//! * [`sim`] — the 27-node indoor testbed (Fig. 7) as a deterministic
//!   discrete-event simulation, with one experiment module per paper
//!   figure/table.
//!
//! ## Quickstart
//!
//! ```
//! use ppr::core::{PacketHints, PpArq, PpArqConfig};
//!
//! // A 64-codeword packet whose middle 8 codewords were judged "bad".
//! let mut hints = vec![0u8; 64];
//! for h in &mut hints[28..36] { *h = 9; }
//! let hints = PacketHints::from_raw(&hints, 6);
//!
//! // PP-ARQ receiver decides the cheapest retransmission request.
//! let plan = PpArq::new(PpArqConfig::default()).plan_feedback(&hints);
//! assert_eq!(plan.chunks.len(), 1);
//! assert!(plan.chunks[0].covers(30));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppr_channel as channel;
pub use ppr_core as core;
pub use ppr_mac as mac;
pub use ppr_phy as phy;
pub use ppr_sim as sim;
