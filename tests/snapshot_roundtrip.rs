//! Snapshot/replay determinism: a run interrupted by a checkpoint —
//! serialized to the versioned binary format, deserialized, resumed —
//! must be bit-identical to the same run left alone.
//!
//! Three layers:
//!
//! 1. **Reception streams** — `process_receptions_checkpointed` vs the
//!    uninterrupted event driver, property-tested across checkpoint
//!    epochs, worker counts and loads.
//! 2. **Experiments** — every registry entry renders the same report
//!    with `checkpoint` set (under both drivers; the timestep driver
//!    resumes an event-core snapshot, so this also pins cross-driver
//!    resume).
//! 3. **The format itself** — a canonical snapshot's bytes are pinned
//!    by fingerprint: any layout change must be deliberate and must
//!    come with a `SNAPSHOT_VERSION` bump.

use ppr::mac::schemes::DeliveryScheme;
use ppr::sim::experiments::registry;
use ppr::sim::network::{
    generate_timeline, process_receptions_checkpointed, process_receptions_tuned,
    snapshot_after_events, RadioEnv, RxArm, SimConfig,
};
use ppr::sim::results::fingerprint;
use ppr::sim::scenario::{Driver, ScenarioBuilder};
use ppr::sim::snapshot::{MeshSnapshot, RxSnapshot, SnapError, SNAPSHOT_VERSION};
use proptest::prelude::*;

fn cfg(load_kbps: f64, seed: u64) -> SimConfig {
    SimConfig {
        load_kbps,
        body_bytes: 1500,
        carrier_sense: false,
        duration_s: 2.0,
        seed,
    }
}

fn arm() -> RxArm {
    RxArm {
        scheme: DeliveryScheme::Ppr { eta: 6 },
        postamble: true,
        collect_symbols: false,
    }
}

#[test]
fn reception_checkpoint_is_bit_identical_at_every_epoch_class() {
    let c = cfg(42.4, 7);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    let arm = arm();
    let reference = process_receptions_tuned(&env, &c, &timeline, &arm, Some(2), 8);
    assert!(!reference.is_empty());
    // Epoch 0 (nothing dispatched), mid-run, and beyond the final event.
    for events in [0u64, 1, 17, 500, 5_000, u64::MAX] {
        let got = process_receptions_checkpointed(&env, &c, &timeline, &arm, Some(3), events);
        assert_eq!(got, reference, "diverged at checkpoint {events}");
    }
}

proptest! {
    /// Any (checkpoint epoch, worker count, seed) combination resumes
    /// bit-identically. Short duration: the vendored proptest runs a
    /// fixed 256 cases.
    #[test]
    fn checkpointed_reception_stream_matches_uninterrupted(
        events in 0u64..1_500,
        workers in 1usize..5,
        seed in 1u64..50,
    ) {
        let mut c = cfg(42.4, seed);
        c.duration_s = 0.3;
        let env = RadioEnv::new(c.seed);
        let timeline = generate_timeline(&env, &c);
        let arm = arm();
        let reference = process_receptions_tuned(&env, &c, &timeline, &arm, Some(1), 1);
        let got = process_receptions_checkpointed(&env, &c, &timeline, &arm, Some(workers), events);
        prop_assert_eq!(got, reference);
    }
}

#[test]
fn every_experiment_is_checkpoint_invariant() {
    // Short but complete pass over all registry experiments: the
    // rendered report must not change when the run snapshots and
    // resumes mid-flight, under either driver.
    let build = |driver: Driver, checkpoint: Option<u64>| {
        let mut b = ScenarioBuilder::new()
            .duration_s(1.0)
            .seed(0xD21)
            .threads(1)
            .arq_packets(10)
            .relay_packets(15)
            .mesh_nodes(300)
            .driver(driver);
        if let Some(cp) = checkpoint {
            b = b.checkpoint(cp);
        }
        b.build()
    };
    for driver in [Driver::Event, Driver::Timestep] {
        let plain = build(driver, None);
        let checked = build(driver, Some(120));
        let mut prior_p = Vec::new();
        let mut prior_c = Vec::new();
        for exp in registry() {
            let rp = exp.run_with(&plain, &prior_p);
            let rc = exp.run_with(&checked, &prior_c);
            assert_eq!(
                rp.render_text(),
                rc.render_text(),
                "checkpoint changed the report of {} under driver={driver:?}",
                exp.id()
            );
            prior_p.push(rp);
            prior_c.push(rc);
        }
    }
}

/// Fingerprint of the canonical reception snapshot's serialized bytes.
/// This pins the *format*: magic, version, field order, and every
/// encoder. If this assertion fires, the byte layout changed — bump
/// `SNAPSHOT_VERSION`, update this constant, and say so in the commit.
const RX_FORMAT_FINGERPRINT: u64 = 0x93d0_91a2_d58e_f27b;

#[test]
fn snapshot_byte_format_is_pinned() {
    // Version 2: adversarial state (jammer/churn/backoff identity,
    // jammer actor state, per-node liveness) joined the mesh snapshot.
    assert_eq!(SNAPSHOT_VERSION, 2);
    let c = cfg(42.4, 11);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    let bytes = snapshot_after_events(&env, &c, &timeline, &arm(), Some(2), 300);
    let mut snap = RxSnapshot::from_bytes(&bytes).expect("canonical snapshot parses");
    // The kernel signature is provenance, not state: it names the host
    // CPU's dispatch choice, so pin the bytes with it normalized.
    snap.kernel_signature = b"pinned".to_vec();
    let fp = fingerprint(&snap.to_bytes());
    assert_eq!(
        fp, RX_FORMAT_FINGERPRINT,
        "snapshot byte format changed: fingerprint {fp:#018x} != pinned \
         {RX_FORMAT_FINGERPRINT:#018x}. If intentional, bump SNAPSHOT_VERSION, update \
         RX_FORMAT_FINGERPRINT, and explain the layout change in the commit."
    );
}

#[test]
fn mesh_resume_mid_jam_burst_is_bit_identical() {
    // Checkpoint epochs chosen so at least one lands while the jammer
    // has recorded bursts and scheduled more (reactive backlog) — the
    // restored adversary must carry its RNG stream, busy-until horizon
    // and burst log verbatim.
    use ppr::sim::adversary::JammerSpec;
    use ppr::sim::experiments::mesh::{run_mesh, MeshDriver, MeshParams};
    let mut params = MeshParams::benign(300, 12.0, 5, 6, 250);
    params.jammer = JammerSpec::React { delay: 4096 };
    params.churn = 2.0;
    params.arq_retries = 5;
    params.arq_backoff_milli = 1500;
    let reference = run_mesh(&params, Some(2));

    let mut mid_burst = Vec::new();
    let mut driver = MeshDriver::new(&params, Some(1));
    loop {
        let before = driver.dispatched();
        driver.run_events(before + 1);
        if driver.dispatched() == before {
            break;
        }
        let snap = driver.save();
        if !snap.adv_bursts.is_empty() && !snap.adv_scheduled.is_empty() {
            mid_burst.push(driver.dispatched());
        }
        if mid_burst.len() >= 16 {
            break;
        }
    }
    assert!(
        !mid_burst.is_empty(),
        "no epoch caught the reactive jammer mid-burst"
    );
    for &events in &[mid_burst[0], *mid_burst.last().unwrap()] {
        let mut d = MeshDriver::new(&params, Some(1));
        d.run_events(events);
        let snap = d.save();
        let bytes = snap.to_bytes();
        let parsed = MeshSnapshot::from_bytes(&bytes).expect("mesh snapshot round-trips");
        let resumed = MeshDriver::restore(&params, Some(4), &parsed)
            .expect("mid-burst snapshot restores")
            .run_to_end();
        assert_eq!(
            resumed, reference,
            "mid-jam-burst resume diverged at {events}"
        );
    }

    // A snapshot taken under one jammer must not restore under another.
    let mut d = MeshDriver::new(&params, Some(1));
    d.run_events(50);
    let snap = d.save();
    let mut other = params;
    other.jammer = JammerSpec::Pulse {
        period: 8192,
        duty: 0.25,
    };
    assert!(matches!(
        MeshDriver::restore(&other, Some(1), &snap),
        Err(SnapError::IdentityMismatch(_))
    ));
}

#[test]
fn snapshot_rejects_tampering_and_wrong_identity() {
    let c = cfg(42.4, 11);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    let arm = arm();
    let bytes = snapshot_after_events(&env, &c, &timeline, &arm, Some(1), 200);

    // Flipping any payload bit breaks the trailing fingerprint.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 1;
    assert!(matches!(
        RxSnapshot::from_bytes(&bad),
        Err(SnapError::BadFingerprint { .. })
    ));

    // A mesh snapshot's kind byte does not parse as a reception one.
    assert!(matches!(
        MeshSnapshot::from_bytes(&bytes),
        Err(SnapError::BadKind(_))
    ));

    // Restoring against a different run is an identity error, caught
    // before any state is rebuilt.
    let snap = RxSnapshot::from_bytes(&bytes).unwrap();
    let mut other = c;
    other.seed ^= 1;
    let other_env = RadioEnv::new(other.seed);
    let other_tl = generate_timeline(&other_env, &other);
    let err = ppr::sim::network::resume_receptions_timestep(
        &other_env,
        &other,
        &other_tl,
        &arm,
        &snap,
        Some(1),
    )
    .unwrap_err();
    assert!(matches!(err, SnapError::IdentityMismatch(_)), "{err}");
}
