//! The differential fleet: one frozen checkpoint, restored under every
//! reception backend, must complete to the same `Reception` stream —
//! and when a stream *does* diverge, the harness must localize the
//! first diverging event exactly.
//!
//! The second half is the regression test for the bisect story: a
//! deliberate perturbation of one restored RNG stream (one in-flight
//! reception's serialized xoshiro state) must surface as a divergence
//! at precisely that reception's stream slot, transmission and
//! receiver — not anywhere downstream.

use ppr::mac::schemes::DeliveryScheme;
use ppr::sim::diff::{
    cross_validate, first_divergence, resume_receptions, standard_backends, DiffBackend,
};
use ppr::sim::network::{generate_timeline, snapshot_after_events, RadioEnv, RxArm, SimConfig};
use ppr::sim::snapshot::RxSnapshot;

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        load_kbps: 42.4,
        body_bytes: 1500,
        carrier_sense: false,
        duration_s: 2.0,
        seed,
    }
}

fn arm() -> RxArm {
    RxArm {
        scheme: DeliveryScheme::Ppr { eta: 6 },
        postamble: true,
        collect_symbols: false,
    }
}

/// A checkpoint whose in-flight set is non-empty (so the restore has
/// prepared-but-undecided receptions to replay), found by scanning
/// epochs.
fn snapshot_with_in_flight(
    env: &RadioEnv,
    c: &SimConfig,
    timeline: &[ppr::sim::network::Transmission],
    arm: &RxArm,
) -> RxSnapshot {
    for events in [200u64, 400, 800, 100, 50, 1600] {
        let bytes = snapshot_after_events(env, c, timeline, arm, Some(2), events);
        let snap = RxSnapshot::from_bytes(&bytes).expect("snapshot parses");
        if !snap.in_flight.is_empty() {
            return snap;
        }
    }
    panic!("no epoch with in-flight receptions — timeline too sparse for this test");
}

#[test]
fn every_backend_completes_the_same_checkpoint_identically() {
    let c = cfg(7);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    let arm = arm();
    let snap = snapshot_with_in_flight(&env, &c, &timeline, &arm);

    let reports = cross_validate(&env, &c, &timeline, &arm, &snap, &standard_backends())
        .expect("checkpoint restores under every backend");
    assert_eq!(reports.len(), standard_backends().len());
    let baseline_fp = reports[0].stream_fp;
    for report in &reports {
        assert!(
            report.divergence.is_none(),
            "{} diverged: {}",
            report.label,
            report.divergence.as_ref().unwrap()
        );
        assert_eq!(
            report.stream_fp, baseline_fp,
            "{} fingerprint differs without a reported divergence",
            report.label
        );
    }
}

#[test]
fn jammed_mesh_checkpoint_agrees_across_the_fleet() {
    // The adversarial analogue of the reception fleet test: one frozen
    // jammed-mesh checkpoint (reactive jammer + churn + exponential
    // backoff) must complete to the same stats under every worker
    // count, with and without an extra snapshot/restore leg.
    use ppr::sim::adversary::JammerSpec;
    use ppr::sim::experiments::mesh::{run_mesh, MeshDriver, MeshParams};
    let mut params = MeshParams::benign(300, 12.0, 7, 6, 250);
    params.jammer = JammerSpec::React { delay: 4096 };
    params.churn = 2.0;
    params.arq_backoff_milli = 1500;
    let reference = run_mesh(&params, Some(1));
    assert!(reference.jam_bursts > 0, "jammer never fired");

    let mut d = MeshDriver::new(&params, Some(1));
    d.run_events(57);
    let snap = d.save();
    for workers in [1usize, 3, 5] {
        let direct = run_mesh(&params, Some(workers));
        assert_eq!(
            direct, reference,
            "direct run diverged at {workers} workers"
        );
        let resumed = MeshDriver::restore(&params, Some(workers), &snap)
            .expect("jammed checkpoint restores")
            .run_to_end();
        assert_eq!(resumed, reference, "resume diverged at {workers} workers");
    }
}

#[test]
fn perturbed_rng_stream_bisects_to_the_exact_event() {
    let c = cfg(7);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    let arm = arm();
    let snap = snapshot_with_in_flight(&env, &c, &timeline, &arm);
    let backend = DiffBackend::Event {
        workers: 1,
        batch_per_worker: 1,
    };
    let baseline = resume_receptions(&env, &c, &timeline, &arm, &snap, backend).unwrap();

    // Perturb each in-flight capture's serialized RNG stream in turn.
    // At least one must change its reception's outcome (interference at
    // this load corrupts chips on most links); every one that does must
    // localize to exactly its own stream slot — never downstream.
    let mut bisected = 0;
    for k in 0..snap.in_flight.len() {
        let mut tampered = snap.clone();
        tampered.in_flight[k].rng[0] ^= 1;
        let candidate = resume_receptions(&env, &c, &timeline, &arm, &tampered, backend).unwrap();
        let Some(d) = first_divergence(&timeline, &baseline, &candidate) else {
            // This reception decoded identically despite the new error
            // pattern (e.g. a clean link) — no divergence to localize.
            continue;
        };
        bisected += 1;
        let f = &tampered.in_flight[k];
        assert_eq!(d.index, f.slot, "divergence not at the perturbed slot");
        assert_eq!(d.receiver, f.receiver);
        assert_eq!(d.tx_id, timeline[f.tx_index].id);
        assert_eq!(d.end_chip, timeline[f.tx_index].end_chip());
    }
    assert!(
        bisected > 0,
        "no perturbation changed any outcome — checkpoint has no corruptible in-flight state"
    );
}

#[test]
fn timestep_and_reference_backends_see_the_perturbation_too() {
    // The bisect verdict must not depend on which backend replays the
    // tampered snapshot: all of them derive the reception's chip errors
    // from the same serialized stream state.
    let c = cfg(11);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    let arm = arm();
    let snap = snapshot_with_in_flight(&env, &c, &timeline, &arm);

    let mut tampered = snap.clone();
    for f in &mut tampered.in_flight {
        f.rng[0] ^= 1; // perturb them all: maximize the chance of a flip
    }
    let verdicts: Vec<Option<usize>> = standard_backends()
        .iter()
        .map(|&b| {
            let baseline = resume_receptions(&env, &c, &timeline, &arm, &snap, b).unwrap();
            let candidate = resume_receptions(&env, &c, &timeline, &arm, &tampered, b).unwrap();
            first_divergence(&timeline, &baseline, &candidate).map(|d| d.index)
        })
        .collect();
    for w in verdicts.windows(2) {
        assert_eq!(w[0], w[1], "backends disagree on the first divergence");
    }
}
