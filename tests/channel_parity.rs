//! Backend calibration: the fast chip-level channel and the sample-level
//! DSP channel must agree on the statistics every higher layer consumes
//! — chip error rate and codeword error rate at a given SINR.
//!
//! This is the test that justifies running the network experiments on
//! the fast backend (DESIGN.md §2).

use ppr::channel::ber::chip_error_prob;
use ppr::channel::chip_channel::{
    codeword_flip_counts, corrupt_chip_words, corrupt_chips, ErrorProfile,
};
use ppr::channel::sample_channel::render_single;
use ppr::phy::chips::ChipWords;
use ppr::phy::modem::{pack_chip_words, unpack_chip_words, MskModem};
use ppr::phy::spread::{despread_hard, spread_bytes};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPS: usize = 4;

/// Chip error rates of the two backends vs the analytic curve, at
/// several SNRs.
#[test]
fn chip_error_rate_parity() {
    let modem = MskModem::new(SPS);
    let mut rng = StdRng::seed_from_u64(1);
    let n_chips = 80_000;
    let chips: Vec<bool> = (0..n_chips).map(|_| rng.gen()).collect();

    for snr_db in [0.0f64, 2.0, 4.0, 6.0] {
        let snr = 10f64.powf(snr_db / 10.0);
        let p_analytic = chip_error_prob(snr);

        // DSP backend: matched-filter chip SNR = P·E_pulse/noise.
        let noise_mw = SPS as f64 / snr;
        let samples = render_single(&modem, &chips, 1.0, noise_mw, &mut rng);
        let rx_dsp = modem.demodulate_hard(&samples, 0, chips.len(), true);
        let p_dsp =
            rx_dsp.iter().zip(&chips).filter(|(a, b)| a != b).count() as f64 / n_chips as f64;

        // Fast backend.
        let profile = ErrorProfile::uniform(n_chips as u64, p_analytic);
        let rx_fast = corrupt_chips(&chips, &profile, &mut rng);
        let p_fast =
            rx_fast.iter().zip(&chips).filter(|(a, b)| a != b).count() as f64 / n_chips as f64;

        let tol = 0.15 * p_analytic + 0.0015;
        assert!(
            (p_dsp - p_analytic).abs() < tol,
            "snr {snr_db} dB: dsp {p_dsp:.4} vs analytic {p_analytic:.4}"
        );
        assert!(
            (p_fast - p_analytic).abs() < tol,
            "snr {snr_db} dB: fast {p_fast:.4} vs analytic {p_analytic:.4}"
        );
    }
}

/// Codeword error rates and mean Hamming hints of the two backends agree
/// — the statistics SoftPHY exposes upward.
#[test]
fn codeword_error_and_hint_parity() {
    let modem = MskModem::new(SPS);
    let mut rng = StdRng::seed_from_u64(2);
    let payload: Vec<u8> = (0..2000).map(|_| rng.gen()).collect();
    let words = spread_bytes(&payload);
    let chips = unpack_chip_words(&words);
    let tx_symbols = ppr::phy::spread::bytes_to_symbols(&payload);

    for snr_db in [1.0f64, 3.0] {
        let snr = 10f64.powf(snr_db / 10.0);
        let p = chip_error_prob(snr);

        // DSP path.
        let noise_mw = SPS as f64 / snr;
        let samples = render_single(&modem, &chips, 1.0, noise_mw, &mut rng);
        let rx_chips_dsp = modem.demodulate_hard(&samples, 0, chips.len(), true);
        let stats_dsp = decode_stats(&rx_chips_dsp, &tx_symbols);

        // Fast path.
        let profile = ErrorProfile::uniform(chips.len() as u64, p);
        let rx_chips_fast = corrupt_chips(&chips, &profile, &mut rng);
        let stats_fast = decode_stats(&rx_chips_fast, &tx_symbols);

        // Flip counts (ground truth) also agree in the mean.
        let flips_dsp = mean(&codeword_flip_counts(&chips, &rx_chips_dsp));
        let flips_fast = mean(&codeword_flip_counts(&chips, &rx_chips_fast));
        assert!(
            (flips_dsp - flips_fast).abs() < 0.35,
            "snr {snr_db}: flips dsp {flips_dsp:.2} fast {flips_fast:.2}"
        );

        let (cer_dsp, hint_dsp) = stats_dsp;
        let (cer_fast, hint_fast) = stats_fast;
        assert!(
            (cer_dsp - cer_fast).abs() < 0.05 + 0.3 * cer_dsp.max(cer_fast),
            "snr {snr_db}: codeword error dsp {cer_dsp:.4} fast {cer_fast:.4}"
        );
        assert!(
            (hint_dsp - hint_fast).abs() < 0.4,
            "snr {snr_db}: mean hint dsp {hint_dsp:.2} fast {hint_fast:.2}"
        );
    }
}

/// The DSP backend at *frame-scale* captures (≥10k chips — two orders
/// beyond the early small-size parity cases) across a sweep of SNRs:
/// chip and codeword error statistics must track the analytic curve and
/// the packed fast backend at every size.
#[test]
fn sample_backend_parity_at_large_frames() {
    let modem = MskModem::new(SPS);
    let mut rng = StdRng::seed_from_u64(7);

    for n_chips in [10_000usize, 40_000] {
        // Whole codewords so codeword stats are well-defined.
        let n_bytes = n_chips / 64; // 2 codewords (64 chips) per byte
        let payload: Vec<u8> = (0..n_bytes).map(|_| rng.gen()).collect();
        let chips = unpack_chip_words(&spread_bytes(&payload));
        let packed = ChipWords::from_bools(&chips);
        let tx_symbols = ppr::phy::spread::bytes_to_symbols(&payload);

        for snr_db in [0.0f64, 2.0, 5.0] {
            let snr = 10f64.powf(snr_db / 10.0);
            let p = chip_error_prob(snr);

            // DSP backend: render + matched filter at frame scale.
            let noise_mw = SPS as f64 / snr;
            let samples = render_single(&modem, &chips, 1.0, noise_mw, &mut rng);
            let rx_dsp = modem.demodulate_hard(&samples, 0, chips.len(), true);
            let p_dsp = rx_dsp.iter().zip(&chips).filter(|(a, b)| a != b).count() as f64
                / chips.len() as f64;
            let tol = 0.15 * p + 0.002;
            assert!(
                (p_dsp - p).abs() < tol,
                "{n_chips} chips, {snr_db} dB: dsp chip rate {p_dsp:.4} vs analytic {p:.4}"
            );

            // Packed fast backend at the same error probability.
            let profile = ErrorProfile::uniform(chips.len() as u64, p);
            let rx_fast = corrupt_chip_words(&packed, &profile, &mut rng);
            let p_fast = rx_fast.hamming_to(&packed) as f64 / chips.len() as f64;
            assert!(
                (p_fast - p).abs() < tol,
                "{n_chips} chips, {snr_db} dB: fast chip rate {p_fast:.4} vs analytic {p:.4}"
            );

            // Codeword-level statistics agree between the backends.
            let (cer_dsp, hint_dsp) = decode_stats(&rx_dsp, &tx_symbols);
            let (cer_fast, hint_fast) = decode_stats(&rx_fast.to_bools(), &tx_symbols);
            assert!(
                (cer_dsp - cer_fast).abs() < 0.04 + 0.25 * cer_dsp.max(cer_fast),
                "{n_chips} chips, {snr_db} dB: cer dsp {cer_dsp:.4} fast {cer_fast:.4}"
            );
            assert!(
                (hint_dsp - hint_fast).abs() < 0.35,
                "{n_chips} chips, {snr_db} dB: hint dsp {hint_dsp:.2} fast {hint_fast:.2}"
            );
        }
    }
}

fn decode_stats(rx_chips: &[bool], tx_symbols: &[u8]) -> (f64, f64) {
    let words = pack_chip_words(rx_chips);
    let decisions = despread_hard(&words);
    let errors = decisions
        .iter()
        .zip(tx_symbols)
        .filter(|(d, &t)| d.symbol != t)
        .count();
    let mean_hint =
        decisions.iter().map(|d| d.distance as f64).sum::<f64>() / decisions.len() as f64;
    (errors as f64 / decisions.len() as f64, mean_hint)
}

fn mean(v: &[u8]) -> f64 {
    v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64
}
