//! Golden regression test: the full experiment registry at a short,
//! fully-pinned scenario must serialize to a byte-identical JSON
//! corpus.
//!
//! This guards the whole pipeline at once — timeline generation, the
//! packed reception loop, every delivery scheme, the hint statistics,
//! PP-ARQ, and the result/JSON layer. Any behavioral change (including
//! future performance work on the chip pipeline) must either leave the
//! corpus untouched or consciously update the pinned fingerprint with
//! an explanation in the commit.

use ppr::sim::experiments::registry;
use ppr::sim::results::fingerprint;
use ppr::sim::scenario::ScenarioBuilder;

/// FNV-1a of the concatenated JSON documents (one per testbed
/// experiment, in registry order, newline-separated) under the pinned
/// scenario below. `mesh10k` and `meshjam` are excluded — mesh floods
/// are far too heavy for a regression test, so each gets its own small
/// pinned corpus ([`mesh_json_fingerprint_is_pinned`],
/// [`meshjam_json_fingerprint_is_pinned`]) instead. The `jam`
/// duty-cycle sweep *is* in the corpus, pinning the PP-ARQ-vs-whole-
/// frame comparison end to end.
const GOLDEN_FINGERPRINT: u64 = 0x9888_552a_1fd1_2bd0;

/// FNV-1a of the `mesh10k` JSON document at the pinned 400-node
/// scenario below. Unchanged by the adversary work: benign parameters
/// leave the mesh driver bit-identical to the pre-adversary code.
const MESH_FINGERPRINT: u64 = 0x67bb_fae3_0308_58e4;

/// FNV-1a of the `meshjam` JSON document at the pinned 400-node
/// scenario below (reactive jammer + churn substituted by default).
const MESHJAM_FINGERPRINT: u64 = 0x3a73_9c08_08b7_cbed;

#[test]
fn registry_json_fingerprint_is_pinned() {
    // Every knob pinned: builder overrides beat any PPR_* environment
    // the harness might set, and threads=1 keeps the scenario snapshot
    // machine-independent (results are thread-count invariant anyway;
    // the reception loop's parity tests prove that).
    let scenario = ScenarioBuilder::new()
        .duration_s(2.0)
        .seed(0x0050_5052)
        .threads(1)
        .arq_packets(40)
        .relay_packets(60)
        .build();

    let mut results = Vec::new();
    let mut corpus = String::new();
    for exp in registry() {
        if exp.id() == "mesh10k" || exp.id() == "meshjam" {
            continue;
        }
        let r = exp.run_with(&scenario, &results);
        assert_eq!(r.id, exp.id());
        corpus.push_str(&r.to_json().render());
        corpus.push('\n');
        results.push(r);
    }
    assert_eq!(results.len(), registry().len() - 2);

    let fp = fingerprint(corpus.as_bytes());
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "registry JSON corpus changed: fingerprint {fp:#018x} != pinned \
         {GOLDEN_FINGERPRINT:#018x}. If the change is intentional, update \
         GOLDEN_FINGERPRINT and explain the behavioral delta in the commit."
    );
}

#[test]
fn mesh_json_fingerprint_is_pinned() {
    use ppr::sim::experiments::find;

    let scenario = ScenarioBuilder::new()
        .seed(0x0050_5052)
        .threads(1)
        .mesh_nodes(400)
        .mesh_density(12.0)
        .build();

    let exp = find("mesh10k").expect("mesh10k registered");
    let corpus = exp.run(&scenario).to_json().render();
    let fp = fingerprint(corpus.as_bytes());
    assert_eq!(
        fp, MESH_FINGERPRINT,
        "mesh10k JSON changed: fingerprint {fp:#018x} != pinned \
         {MESH_FINGERPRINT:#018x}. If the change is intentional, update \
         MESH_FINGERPRINT and explain the behavioral delta in the commit."
    );
}

#[test]
fn meshjam_json_fingerprint_is_pinned() {
    use ppr::sim::experiments::find;

    let scenario = ScenarioBuilder::new()
        .seed(0x0050_5052)
        .threads(1)
        .mesh_nodes(400)
        .mesh_density(12.0)
        .build();

    let exp = find("meshjam").expect("meshjam registered");
    let corpus = exp.run(&scenario).to_json().render();
    let fp = fingerprint(corpus.as_bytes());
    assert_eq!(
        fp, MESHJAM_FINGERPRINT,
        "meshjam JSON changed: fingerprint {fp:#018x} != pinned \
         {MESHJAM_FINGERPRINT:#018x}. If the change is intentional, update \
         MESHJAM_FINGERPRINT and explain the behavioral delta in the commit."
    );
}
