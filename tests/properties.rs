//! Property-based tests (proptest) for the core data structures and
//! invariants.

use ppr::channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr::core::arq::{RetxPacket, Segment};
use ppr::core::dp::{
    plan_chunks, plan_chunks_brute, plan_chunks_interval, plan_chunks_monotone,
    plan_chunks_quadratic, CostModel,
};
use ppr::core::feedback::{complement_ranges, Feedback};
use ppr::core::runs::{RunLengths, UnitRange};
use ppr::mac::crc::{append_crc32, crc16, crc32, verify_crc32_trailer};
use ppr::phy::spread::{bytes_to_symbols, despread_hard, spread, symbols_to_bytes};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Byte ↔ symbol ↔ codeword round trip on a clean channel.
    #[test]
    fn spread_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let symbols = bytes_to_symbols(&data);
        let words = spread(&symbols);
        let decisions = despread_hard(&words);
        prop_assert!(decisions.iter().all(|d| d.distance == 0));
        let rx: Vec<u8> = decisions.iter().map(|d| d.symbol).collect();
        prop_assert_eq!(symbols_to_bytes(&rx), data);
    }

    /// Any ≤5-chip corruption per codeword decodes exactly and reports
    /// the flip count as the hint (minimum code distance is 12).
    #[test]
    fn hint_equals_flips_below_half_distance(
        symbol in 0u8..16,
        flips in proptest::collection::btree_set(0u32..32, 0..=5),
    ) {
        let word = ppr::phy::chips::spread_symbol(symbol);
        let mut corrupted = word;
        for f in &flips {
            corrupted ^= 1 << f;
        }
        let d = ppr::phy::chips::decide(corrupted);
        prop_assert_eq!(d.symbol, symbol);
        prop_assert_eq!(d.distance as usize, flips.len());
    }

    /// Run-length representation round-trips labels exactly.
    #[test]
    fn run_lengths_roundtrip(labels in proptest::collection::vec(any::<bool>(), 0..300)) {
        let rl = RunLengths::from_labels(&labels);
        prop_assert_eq!(rl.to_labels(), labels);
        // Structural invariants.
        prop_assert_eq!(rl.bad_units() + rl.good_units(), rl.total);
        for p in &rl.pairs {
            prop_assert!(p.bad_len >= 1);
        }
    }

    /// The DP's cost equals the exponential brute force and its chunks
    /// cover every bad unit, never overlap, and start/end on bad units.
    #[test]
    fn dp_is_optimal_and_well_formed(
        labels in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let rl = RunLengths::from_labels(&labels);
        prop_assume!(rl.l() <= 14); // keep the brute force tractable
        let cost = CostModel::bytes(labels.len().max(16));
        let dp = plan_chunks(&rl, &cost);
        let brute = plan_chunks_brute(&rl, &cost);
        prop_assert!((dp.cost_bits - brute.cost_bits).abs() < 1e-9,
            "dp {} vs brute {}", dp.cost_bits, brute.cost_bits);
        // Coverage + disjointness.
        for (i, &good) in labels.iter().enumerate() {
            let covering = dp.chunks.iter().filter(|c| c.covers(i)).count();
            if !good {
                prop_assert_eq!(covering, 1, "bad unit {} covered {} times", i, covering);
            }
        }
        for w in dp.chunks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for c in &dp.chunks {
            prop_assert!(!labels[c.start] && !labels[c.end - 1]);
        }
    }

    /// All planner implementations return *identical chunk vectors* (not
    /// just equal costs) for arbitrary labelings: the `O(L²)` and `O(L)`
    /// partition planners, and the production `plan_chunks`, against the
    /// pinned `O(L³)` interval DP.
    #[test]
    fn partition_planners_match_interval_dp(
        labels in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let rl = RunLengths::from_labels(&labels);
        let cost = CostModel::bytes(labels.len().max(16));
        let interval = plan_chunks_interval(&rl, &cost);
        let quadratic = plan_chunks_quadratic(&rl, &cost);
        let monotone = plan_chunks_monotone(&rl, &cost);
        let production = plan_chunks(&rl, &cost);
        prop_assert_eq!(&quadratic.chunks, &interval.chunks, "quadratic chunks");
        prop_assert_eq!(&monotone.chunks, &interval.chunks, "monotone chunks");
        prop_assert_eq!(&production.chunks, &interval.chunks, "plan_chunks chunks");
        let tol = 1e-9 * (1.0 + interval.cost_bits.abs());
        prop_assert!((quadratic.cost_bits - interval.cost_bits).abs() <= tol,
            "quadratic cost {} vs interval {}", quadratic.cost_bits, interval.cost_bits);
        prop_assert!((monotone.cost_bits - interval.cost_bits).abs() <= tol,
            "monotone cost {} vs interval {}", monotone.cost_bits, interval.cost_bits);
    }

    /// Tie-pinning: under a dyadic cost model every atomic cost is an
    /// integer-valued f64 (`log S` and `log λᵇ` of powers of two, good
    /// contributions multiples of `bpu`), so group-cost sums are exact in
    /// every planner and cost ties between different partitions are
    /// genuine and frequent. The planners must still agree chunk-for-
    /// chunk — tie-breaking is pinned (merged beats splits on ties, the
    /// smallest split point wins), not accidental.
    #[test]
    fn planner_tie_breaking_is_pinned(
        runs in proptest::collection::vec((0u32..4, 0usize..4, 0usize..3), 1..16),
        leading in 0usize..3,
    ) {
        // Bad lengths 2^e ∈ {1,2,4,8}; good lengths 0..=6 in steps of 2
        // (checksum saturation at 16 bits hits at good = 2, forcing
        // collisions between singleton and merged costs).
        let mut labels = vec![true; leading];
        for &(bad_exp, good_half, extra) in &runs {
            labels.extend(std::iter::repeat_n(false, 1usize << bad_exp));
            labels.extend(std::iter::repeat_n(true, 2 * good_half + 2 * extra));
        }
        let rl = RunLengths::from_labels(&labels);
        let cost = CostModel {
            packet_units: 1024, // log S = 10, exactly
            bits_per_unit: 8.0,
            checksum_bits: 16.0,
        };
        let interval = plan_chunks_interval(&rl, &cost);
        let quadratic = plan_chunks_quadratic(&rl, &cost);
        let monotone = plan_chunks_monotone(&rl, &cost);
        prop_assert_eq!(&quadratic.chunks, &interval.chunks, "quadratic ties");
        prop_assert_eq!(&monotone.chunks, &interval.chunks, "monotone ties");
        // Costs are exact integers here: demand bit-equality.
        prop_assert_eq!(quadratic.cost_bits, interval.cost_bits);
        prop_assert_eq!(monotone.cost_bits, interval.cost_bits);
        if rl.l() <= 14 {
            // Brute force scores in plain f64 (deliberately independent
            // of the planners' fixed-point arithmetic): tolerance, not
            // bit equality.
            let brute = plan_chunks_brute(&rl, &cost);
            prop_assert!((brute.cost_bits - interval.cost_bits).abs() < 1e-9,
                "brute cost {} vs interval {}", brute.cost_bits, interval.cost_bits);
        }
    }

    /// Feedback encoding round-trips bit-exactly for arbitrary chunk
    /// geometries.
    #[test]
    fn feedback_roundtrip(
        len in 1usize..2000,
        raw_chunks in proptest::collection::vec((0usize..2000, 1usize..100), 0..10),
    ) {
        // Normalize raw chunks into sorted, disjoint, in-bounds ranges.
        let mut chunks: Vec<UnitRange> = Vec::new();
        let mut cursor = 0usize;
        for (start, clen) in raw_chunks {
            let s = cursor + start % 50;
            let e = (s + clen).min(len);
            if s >= len || e <= s {
                continue;
            }
            chunks.push(UnitRange::new(s, e));
            cursor = e + 1;
        }
        let bytes: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
        let fb = Feedback::from_plan(3, &bytes, chunks);
        let decoded = Feedback::decode(&fb.encode());
        prop_assert_eq!(decoded, Some(fb.clone()));
        // Complement geometry tiles the packet with the chunks.
        let mut covered = vec![false; len];
        for c in &fb.chunks {
            for v in &mut covered[c.start..c.end] {
                *v = true;
            }
        }
        for r in complement_ranges(len, &fb.chunks) {
            for v in &mut covered[r.start..r.end] {
                prop_assert!(!*v);
                *v = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Retransmission packets round-trip including confirm bitmaps and
    /// segments.
    #[test]
    fn retx_roundtrip(
        confirms in proptest::collection::vec(any::<bool>(), 0..16),
        segs in proptest::collection::vec((0usize..500, 1usize..60), 0..6),
    ) {
        let packet_len = 1000usize;
        let segments: Vec<Segment> = segs
            .into_iter()
            .map(|(off, len)| Segment {
                offset: off.min(packet_len - 60),
                bytes: (0..len).map(|i| i as u8).collect(),
            })
            .collect();
        let r = RetxPacket { seq: 7, packet_len, confirms: confirms.clone(), segments: segments.clone() };
        let d = RetxPacket::decode(&r.encode()).unwrap();
        prop_assert_eq!(d.seq, 7);
        prop_assert_eq!(d.confirms, Some(confirms));
        prop_assert_eq!(d.segments, segments);
    }

    /// CRC trailer verification accepts exactly the untampered buffer.
    #[test]
    fn crc_trailer_detects_any_single_flip(
        data in proptest::collection::vec(any::<u8>(), 1..100),
        flip_byte in 0usize..104,
        flip_bit in 0u8..8,
    ) {
        let mut buf = data;
        append_crc32(&mut buf);
        prop_assert!(verify_crc32_trailer(&buf));
        let idx = flip_byte % buf.len();
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(!verify_crc32_trailer(&buf));
    }

    /// CRC16/CRC32 are deterministic functions.
    #[test]
    fn crc_determinism(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(crc32(&data), crc32(&data));
        prop_assert_eq!(crc16(&data), crc16(&data));
    }

    /// `ErrorProfile::uniform` invariants: a single span covering the
    /// whole frame, correct lookups inside and outside, and an exact
    /// expected-error count.
    #[test]
    fn error_profile_uniform_invariants(
        len in 1u64..200_000,
        p in 0.0f64..1.0,
        probe in 0u64..250_000,
    ) {
        let profile = ErrorProfile::uniform(len, p);
        prop_assert_eq!(profile.len_chips(), len);
        prop_assert_eq!(profile.spans(), &[(0, len, p)][..]);
        let expect = if probe < len { p } else { 0.0 };
        prop_assert_eq!(profile.prob_at(probe), expect);
        prop_assert!((profile.expected_errors() - len as f64 * p).abs() < 1e-6 * len as f64);
    }

    /// `ErrorProfile::from_pieces` invariants for arbitrary monotone
    /// piecewise profiles: the spans are preserved verbatim, offsets
    /// stay monotone and disjoint, `len_chips` is the last span's end,
    /// span coverage answers `prob_at`, and `expected_errors` is the
    /// piecewise sum.
    #[test]
    fn error_profile_from_pieces_invariants(
        raw in proptest::collection::vec((0u64..40, 1u64..300, 0.0f64..1.0), 0..8),
        probe in 0u64..4000,
    ) {
        // Build monotone spans (possibly with gaps) from (gap, len, p).
        let mut cursor = 0u64;
        let mut pieces = Vec::new();
        for (gap, len, p) in raw {
            let start = cursor + gap;
            pieces.push((start, start + len, p));
            cursor = start + len;
        }
        let profile = ErrorProfile::from_pieces(pieces.clone());
        prop_assert_eq!(profile.spans(), pieces.as_slice());
        prop_assert_eq!(
            profile.len_chips(),
            pieces.last().map(|&(_, e, _)| e).unwrap_or(0)
        );
        // Monotone, disjoint offsets.
        for w in profile.spans().windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping spans {:?}", w);
        }
        for &(s, e, _) in profile.spans() {
            prop_assert!(s < e);
        }
        // prob_at agrees with direct span lookup (0 in gaps / past end).
        let direct = pieces
            .iter()
            .find(|&&(s, e, _)| s <= probe && probe < e)
            .map(|&(_, _, p)| p)
            .unwrap_or(0.0);
        prop_assert_eq!(profile.prob_at(probe), direct);
        // Expected errors = piecewise sum.
        let sum: f64 = pieces.iter().map(|&(s, e, p)| (e - s) as f64 * p).sum();
        prop_assert!((profile.expected_errors() - sum).abs() < 1e-9 + 1e-12 * sum.abs());
    }

    /// Truncated receptions: corruption never grows or shrinks the chip
    /// stream, never touches chips outside the profile's spans, and
    /// ignores profile coverage past the reception.
    #[test]
    fn error_profile_truncation_handling(
        n_chips in 1usize..3000,
        span_len in 1u64..5000,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // A hot span in the middle half of the profile, possibly
        // overrunning the (shorter) reception.
        let start = span_len / 4;
        let profile = ErrorProfile::from_pieces(vec![
            (0, start, 0.0),
            (start, start + span_len, p),
        ]);
        let chips = vec![false; n_chips];
        let mut rng = StdRng::seed_from_u64(seed);
        let rx = corrupt_chips(&chips, &profile, &mut rng);
        prop_assert_eq!(rx.len(), n_chips);
        // Chips before the hot span are untouched.
        for (i, &c) in rx.iter().enumerate().take((start as usize).min(n_chips)) {
            prop_assert!(!c, "chip {} outside spans flipped", i);
        }
    }

    /// Frame link-bytes layout invariants hold for arbitrary bodies.
    #[test]
    fn frame_layout_invariants(body in proptest::collection::vec(any::<u8>(), 0..600)) {
        use ppr::mac::frame::{Frame, FrameGeometry, Header};
        let frame = Frame::new(5, 6, 7, body.clone());
        let bytes = frame.link_bytes();
        let g = FrameGeometry::for_body(body.len());
        prop_assert_eq!(bytes.len(), g.total());
        prop_assert_eq!(&bytes[g.body()], body.as_slice());
        let hdr = Header::decode(&bytes[g.header()]).unwrap();
        let trl = Header::decode(&bytes[g.trailer()]).unwrap();
        prop_assert_eq!(hdr, trl);
        prop_assert_eq!(hdr.len as usize, body.len());
        prop_assert_eq!(frame.chips().len(), frame.chips_len());
    }
}

/// Planner equivalence at production scale: random and tie-heavy
/// instances up to L = 512 bad runs, checked against the `O(L³)`
/// interval DP (too slow for the per-case proptest loop at this size,
/// so a fixed deterministic corpus).
#[test]
fn partition_planners_match_interval_dp_at_large_l() {
    use rand::Rng;
    for (target_l, seed, dyadic) in [
        (128usize, 0xD11u64, false),
        (256, 0xD22, false),
        (512, 0xD33, false),
        (512, 0xD44, true),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels: Vec<bool> = Vec::new();
        for _ in 0..target_l {
            // Dyadic instances use power-of-two bad runs and even good
            // runs so costs are exact and ties are frequent at scale.
            let (bad, good) = if dyadic {
                (
                    1usize << rng.gen_range(0..3u32),
                    2 * rng.gen_range(0..3usize),
                )
            } else {
                (rng.gen_range(1..6usize), rng.gen_range(0..9usize))
            };
            labels.extend(std::iter::repeat_n(false, bad));
            labels.extend(std::iter::repeat_n(true, good));
        }
        let rl = RunLengths::from_labels(&labels);
        assert!(rl.l() >= target_l / 2, "instance lost its runs");
        let packet = if dyadic { 4096 } else { labels.len().max(16) };
        let cost = CostModel {
            packet_units: packet,
            bits_per_unit: 8.0,
            checksum_bits: 16.0,
        };
        let interval = plan_chunks_interval(&rl, &cost);
        let quadratic = plan_chunks_quadratic(&rl, &cost);
        let monotone = plan_chunks_monotone(&rl, &cost);
        assert_eq!(
            quadratic.chunks,
            interval.chunks,
            "quadratic L={} seed={seed:#x}",
            rl.l()
        );
        assert_eq!(
            monotone.chunks,
            interval.chunks,
            "monotone L={} seed={seed:#x}",
            rl.l()
        );
        let tol = 1e-9 * (1.0 + interval.cost_bits.abs());
        assert!((quadratic.cost_bits - interval.cost_bits).abs() <= tol);
        assert!((monotone.cost_bits - interval.cost_bits).abs() <= tol);
        if dyadic {
            assert_eq!(quadratic.cost_bits, interval.cost_bits, "dyadic exact");
            assert_eq!(monotone.cost_bits, interval.cost_bits, "dyadic exact");
        }
    }
}
