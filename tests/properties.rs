//! Property-based tests (proptest) for the core data structures and
//! invariants.

use ppr::core::arq::{RetxPacket, Segment};
use ppr::core::dp::{plan_chunks, plan_chunks_brute, CostModel};
use ppr::core::feedback::{complement_ranges, Feedback};
use ppr::core::runs::{RunLengths, UnitRange};
use ppr::mac::crc::{append_crc32, crc16, crc32, verify_crc32_trailer};
use ppr::phy::spread::{bytes_to_symbols, despread_hard, spread, symbols_to_bytes};
use proptest::prelude::*;

proptest! {
    /// Byte ↔ symbol ↔ codeword round trip on a clean channel.
    #[test]
    fn spread_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let symbols = bytes_to_symbols(&data);
        let words = spread(&symbols);
        let decisions = despread_hard(&words);
        prop_assert!(decisions.iter().all(|d| d.distance == 0));
        let rx: Vec<u8> = decisions.iter().map(|d| d.symbol).collect();
        prop_assert_eq!(symbols_to_bytes(&rx), data);
    }

    /// Any ≤5-chip corruption per codeword decodes exactly and reports
    /// the flip count as the hint (minimum code distance is 12).
    #[test]
    fn hint_equals_flips_below_half_distance(
        symbol in 0u8..16,
        flips in proptest::collection::btree_set(0u32..32, 0..=5),
    ) {
        let word = ppr::phy::chips::spread_symbol(symbol);
        let mut corrupted = word;
        for f in &flips {
            corrupted ^= 1 << f;
        }
        let d = ppr::phy::chips::decide(corrupted);
        prop_assert_eq!(d.symbol, symbol);
        prop_assert_eq!(d.distance as usize, flips.len());
    }

    /// Run-length representation round-trips labels exactly.
    #[test]
    fn run_lengths_roundtrip(labels in proptest::collection::vec(any::<bool>(), 0..300)) {
        let rl = RunLengths::from_labels(&labels);
        prop_assert_eq!(rl.to_labels(), labels);
        // Structural invariants.
        prop_assert_eq!(rl.bad_units() + rl.good_units(), rl.total);
        for p in &rl.pairs {
            prop_assert!(p.bad_len >= 1);
        }
    }

    /// The DP's cost equals the exponential brute force and its chunks
    /// cover every bad unit, never overlap, and start/end on bad units.
    #[test]
    fn dp_is_optimal_and_well_formed(
        labels in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let rl = RunLengths::from_labels(&labels);
        prop_assume!(rl.l() <= 14); // keep the brute force tractable
        let cost = CostModel::bytes(labels.len().max(16));
        let dp = plan_chunks(&rl, &cost);
        let brute = plan_chunks_brute(&rl, &cost);
        prop_assert!((dp.cost_bits - brute.cost_bits).abs() < 1e-9,
            "dp {} vs brute {}", dp.cost_bits, brute.cost_bits);
        // Coverage + disjointness.
        for (i, &good) in labels.iter().enumerate() {
            let covering = dp.chunks.iter().filter(|c| c.covers(i)).count();
            if !good {
                prop_assert_eq!(covering, 1, "bad unit {} covered {} times", i, covering);
            }
        }
        for w in dp.chunks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for c in &dp.chunks {
            prop_assert!(!labels[c.start] && !labels[c.end - 1]);
        }
    }

    /// Feedback encoding round-trips bit-exactly for arbitrary chunk
    /// geometries.
    #[test]
    fn feedback_roundtrip(
        len in 1usize..2000,
        raw_chunks in proptest::collection::vec((0usize..2000, 1usize..100), 0..10),
    ) {
        // Normalize raw chunks into sorted, disjoint, in-bounds ranges.
        let mut chunks: Vec<UnitRange> = Vec::new();
        let mut cursor = 0usize;
        for (start, clen) in raw_chunks {
            let s = cursor + start % 50;
            let e = (s + clen).min(len);
            if s >= len || e <= s {
                continue;
            }
            chunks.push(UnitRange::new(s, e));
            cursor = e + 1;
        }
        let bytes: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
        let fb = Feedback::from_plan(3, &bytes, chunks);
        let decoded = Feedback::decode(&fb.encode());
        prop_assert_eq!(decoded, Some(fb.clone()));
        // Complement geometry tiles the packet with the chunks.
        let mut covered = vec![false; len];
        for c in &fb.chunks {
            for v in &mut covered[c.start..c.end] {
                *v = true;
            }
        }
        for r in complement_ranges(len, &fb.chunks) {
            for v in &mut covered[r.start..r.end] {
                prop_assert!(!*v);
                *v = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Retransmission packets round-trip including confirm bitmaps and
    /// segments.
    #[test]
    fn retx_roundtrip(
        confirms in proptest::collection::vec(any::<bool>(), 0..16),
        segs in proptest::collection::vec((0usize..500, 1usize..60), 0..6),
    ) {
        let packet_len = 1000usize;
        let segments: Vec<Segment> = segs
            .into_iter()
            .map(|(off, len)| Segment {
                offset: off.min(packet_len - 60),
                bytes: (0..len).map(|i| i as u8).collect(),
            })
            .collect();
        let r = RetxPacket { seq: 7, packet_len, confirms: confirms.clone(), segments: segments.clone() };
        let d = RetxPacket::decode(&r.encode()).unwrap();
        prop_assert_eq!(d.seq, 7);
        prop_assert_eq!(d.confirms, Some(confirms));
        prop_assert_eq!(d.segments, segments);
    }

    /// CRC trailer verification accepts exactly the untampered buffer.
    #[test]
    fn crc_trailer_detects_any_single_flip(
        data in proptest::collection::vec(any::<u8>(), 1..100),
        flip_byte in 0usize..104,
        flip_bit in 0u8..8,
    ) {
        let mut buf = data;
        append_crc32(&mut buf);
        prop_assert!(verify_crc32_trailer(&buf));
        let idx = flip_byte % buf.len();
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(!verify_crc32_trailer(&buf));
    }

    /// CRC16/CRC32 are deterministic functions.
    #[test]
    fn crc_determinism(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(crc32(&data), crc32(&data));
        prop_assert_eq!(crc16(&data), crc16(&data));
    }

    /// Frame link-bytes layout invariants hold for arbitrary bodies.
    #[test]
    fn frame_layout_invariants(body in proptest::collection::vec(any::<u8>(), 0..600)) {
        use ppr::mac::frame::{Frame, FrameGeometry, Header};
        let frame = Frame::new(5, 6, 7, body.clone());
        let bytes = frame.link_bytes();
        let g = FrameGeometry::for_body(body.len());
        prop_assert_eq!(bytes.len(), g.total());
        prop_assert_eq!(&bytes[g.body()], body.as_slice());
        let hdr = Header::decode(&bytes[g.header()]).unwrap();
        let trl = Header::decode(&bytes[g.trailer()]).unwrap();
        prop_assert_eq!(hdr, trl);
        prop_assert_eq!(hdr.len as usize, body.len());
        prop_assert_eq!(frame.chips().len(), frame.chips_len());
    }
}
