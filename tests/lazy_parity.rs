//! Parity harness for the demand-driven (`SymbolView`) decode path.
//!
//! The reference `&[bool]` receive path despreads a frame's whole link
//! section eagerly; the packed path defers despreading until a consumer
//! reads a range. These tests prove the two are **bit-identical** no
//! matter which accessors run, in which order, over which sub-ranges —
//! across random frames, corruption levels, schemes, and both sync
//! directions (preamble decode and postamble rollback).

use ppr::channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr::mac::frame::Frame;
use ppr::mac::rx::{FrameReceiver, RxFrame};
use ppr::mac::schemes::DeliveryScheme;
use ppr::phy::chips::ChipWords;
use ppr::phy::sync::POSTAMBLE_ZERO_SYMBOLS;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a corrupted capture of one frame and decodes it through both
/// paths (eager bool reference, lazy packed) via the preamble.
fn decode_both(body: &[u8], p: f64, seed: u64) -> (RxFrame, RxFrame) {
    let frame = Frame::new(1, 2, 3, body.to_vec());
    let chips = frame.chips();
    let profile = ErrorProfile::uniform(chips.len() as u64, p);
    let mut rng = StdRng::seed_from_u64(seed);
    let corrupted = corrupt_chips(&chips, &profile, &mut rng);
    let packed = ChipWords::from_bools(&corrupted);
    let rx = FrameReceiver::default();
    let data_start = ppr::phy::sync::tx_preamble_chips().len() as i64;
    (
        rx.decode_from_preamble(&corrupted, data_start),
        rx.decode_from_preamble_words(&packed, data_start),
    )
}

/// Every accessor agrees between the eager and lazy frames, regardless
/// of the order the lazy side is interrogated in.
fn assert_accessor_parity(eager: &RxFrame, lazy: &RxFrame, chunk: usize) {
    // Deliberately touch the lazy frame in a scattered order: a chunk
    // read first (partial block fills), then hints, then whole-frame
    // reads, then the CRC.
    if let Some(g) = lazy.geometry() {
        let body_len = g.body().len();
        if body_len > 0 {
            let lo = chunk % body_len;
            let hi = (lo + 1 + chunk % 40).min(body_len);
            assert_eq!(
                eager.body_byte_range(lo..hi),
                lazy.body_byte_range(lo..hi),
                "chunk bytes {lo}..{hi}"
            );
            assert_eq!(
                eager.body_hint_range(lo..hi),
                lazy.body_hint_range(lo..hi),
                "chunk hints {lo}..{hi}"
            );
        }
    }
    assert_eq!(eager.body_symbol_hints(), lazy.body_symbol_hints());
    assert_eq!(eager.body_byte_hints(), lazy.body_byte_hints());
    assert_eq!(eager.body_bytes(), lazy.body_bytes());
    assert_eq!(eager.pkt_crc_ok(), lazy.pkt_crc_ok());
    assert_eq!(eager.link_bytes(), lazy.link_bytes());
    assert_eq!(eager.link_symbols(), lazy.link_symbols());
    assert_eq!(eager, lazy, "full-frame equality");
}

#[test]
fn preamble_decode_parity_fixed_cases() {
    for (len, p, seed) in [
        (0usize, 0.0, 1u64),
        (1, 0.02, 2),
        (63, 0.05, 3),
        (64, 0.10, 4),
        (200, 0.20, 5),
        (500, 0.35, 6),
        (1500, 0.08, 7),
    ] {
        let body: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
        let (eager, lazy) = decode_both(&body, p, seed);
        assert_accessor_parity(&eager, &lazy, seed as usize);
    }
}

#[test]
fn postamble_rollback_parity() {
    // Receiver wakes up mid-frame: negative link start, padded head.
    let frame = Frame::new(4, 4, 2, vec![0x3C; 120]);
    let full = frame.chips();
    for cut_frac in [2usize, 3, 5] {
        let cut = (cut_frac - 1) * full.len() / cut_frac;
        let tail = full[cut..].to_vec();
        let packed = ChipWords::from_bools(&tail);
        let rx = FrameReceiver::default();
        let post_off = tail.len() - ppr::phy::sync::tx_postamble_chips().len()
            + (POSTAMBLE_ZERO_SYMBOLS - 2) * 32;
        let eager = rx.decode_from_postamble(&tail, post_off);
        let lazy = rx.decode_from_postamble_words(&packed, post_off);
        match (eager, lazy) {
            (Some(e), Some(l)) => assert_accessor_parity(&e, &l, cut),
            (e, l) => assert_eq!(e.is_none(), l.is_none(), "cut 1/{cut_frac}"),
        }
    }
}

#[test]
fn scheme_delivery_parity_on_lazy_frames() {
    for (p, seed) in [(0.0, 10u64), (0.05, 11), (0.15, 12), (0.30, 13)] {
        for scheme in DeliveryScheme::standard_set(50, 6) {
            let payload: Vec<u8> = (0..scheme.payload_len(300))
                .map(|i| (i * 13 + 1) as u8)
                .collect();
            let body = scheme.build_body(&payload);
            let (eager, lazy) = decode_both(&body, p, seed);
            assert_eq!(
                scheme.deliver(&eager),
                scheme.deliver(&lazy),
                "scheme {} p {p} seed {seed}",
                scheme.name()
            );
        }
    }
}

proptest! {
    /// Demand-driven decode equals the eager reference across random
    /// bodies, corruption levels, seeds and probe orders.
    #[test]
    fn lazy_decode_parity_arbitrary(
        len in 0usize..400,
        p in 0.0f64..0.45,
        seed in any::<u64>(),
        chunk in any::<usize>(),
    ) {
        let body: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(17)).collect();
        let (eager, lazy) = decode_both(&body, p, seed);
        prop_assert_eq!(eager.header, lazy.header);
        assert_accessor_parity(&eager, &lazy, chunk);
    }
}
