//! The simulator's known-offset fast receive path must agree with the
//! faithful sliding-correlator pipeline on identical corrupted captures.

use ppr::channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr::mac::frame::Frame;
use ppr::mac::rx::FrameReceiver;
use ppr::sim::rxpath::{Acquisition, FastRx};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn compare_on(profile_pieces: Vec<(u64, u64, f64)>, seed: u64) {
    let payload: Vec<u8> = (0..180).map(|i| (i * 7) as u8).collect();
    let frame = Frame::new(1, 2, 3, payload);
    let chips = frame.chips();
    let total = chips.len() as u64;
    let pieces: Vec<(u64, u64, f64)> = profile_pieces
        .into_iter()
        .map(|(s, e, p)| (s.min(total), e.min(total), p))
        .collect();
    let profile = ErrorProfile::from_pieces(pieces);
    let mut rng = StdRng::seed_from_u64(seed);
    let corrupted = corrupt_chips(&chips, &profile, &mut rng);

    // Fast path (receiver idle).
    let fast = FastRx::new(true);
    let (acq, fast_rx) = fast.receive(&frame, &corrupted, true);

    // Sliding pipeline. It may additionally emit headerless frames from
    // false locks on jammed chips (they carry no geometry and deliver
    // nothing); parity is defined over frames with verified geometry.
    let slow_frames = FrameReceiver::default().receive(&corrupted);
    let slow = slow_frames.iter().find(|f| f.header.is_some());

    match (acq, slow) {
        (Acquisition::None, None) => {}
        (Acquisition::None, Some(f)) => {
            panic!(
                "slow path decoded ({:?}) where fast path lost the frame",
                f.sync
            );
        }
        (_, None) => {
            let fast_rx = fast_rx.unwrap();
            assert!(
                fast_rx.header.is_none(),
                "fast path got geometry where slow path did not"
            );
        }
        (_, Some(slow)) => {
            let fast_rx = fast_rx.unwrap();
            assert_eq!(fast_rx.header, slow.header, "header mismatch");
            assert_eq!(
                fast_rx.link_symbols(),
                slow.link_symbols(),
                "decoded symbols/hints mismatch"
            );
            assert_eq!(fast_rx.pkt_crc_ok(), slow.pkt_crc_ok());
        }
    }
}

#[test]
fn parity_on_clean_frame() {
    compare_on(vec![(0, u64::MAX, 0.0)], 1);
}

#[test]
fn parity_on_light_noise() {
    compare_on(vec![(0, u64::MAX, 0.01)], 2);
}

#[test]
fn parity_on_mid_frame_burst() {
    compare_on(
        vec![(0, 5000, 1e-4), (5000, 9000, 0.45), (9000, u64::MAX, 1e-4)],
        3,
    );
}

#[test]
fn parity_on_jammed_preamble() {
    compare_on(vec![(0, 1500, 0.5), (1500, u64::MAX, 1e-3)], 4);
}

#[test]
fn parity_on_jammed_postamble() {
    // Jam the tail: both paths must fall back to preamble decode.
    compare_on(vec![(0, 12000, 1e-4), (12000, u64::MAX, 0.5)], 5);
}

#[test]
fn parity_across_many_seeds_marginal_link() {
    for seed in 10..40 {
        compare_on(vec![(0, u64::MAX, 0.06)], seed);
    }
}
