//! Parity harness for the SIMD despread kernels.
//!
//! `ppr_phy::chips::decide` is the executable specification of the
//! nearest-codeword search; every vectorized kernel in `ppr_phy::simd`
//! (SSSE3 `pshufb` nibble popcount, AVX2, AVX-512 `vpopcntd`) must
//! reproduce it **bit-identically** — decoded symbol *and* Hamming-hint,
//! including the tie-break toward the lowest symbol index — on any
//! feature set the host offers. Kernels that the CPU lacks are skipped
//! by construction (`DespreadKernel::available`).

use ppr::phy::chips::{decide, ChipWords, Decision, CODEBOOK};
use ppr::phy::simd::{decide_batch, decide_lanes_into, DespreadKernel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every kernel against the scalar spec on adversarial fixed inputs:
/// clean codewords (distance 0), their complements, near-ties, and the
/// all-zero/all-one words that tie many codebook entries at once.
#[test]
fn kernels_match_scalar_on_adversarial_words() {
    let mut inputs: Vec<u32> = vec![0, u32::MAX, 0xAAAA_AAAA, 0x5555_5555];
    for &cw in CODEBOOK.iter() {
        inputs.push(cw);
        inputs.push(!cw);
        // One, two, three flips.
        inputs.push(cw ^ 1);
        inputs.push(cw ^ 0x8000_0001);
        inputs.push(cw ^ 0x0101_0100);
    }
    let expect: Vec<Decision> = inputs.iter().map(|&w| decide(w)).collect();
    for kernel in DespreadKernel::available() {
        let mut got = Vec::new();
        kernel.decide_into(&inputs, &mut got);
        assert_eq!(got, expect, "kernel {}", kernel.name());
    }
}

/// Vector-width edges: every length straddling the 4/8/16-lane chunk
/// boundaries must handle its tail exactly like the scalar loop.
#[test]
fn kernels_handle_every_tail_length() {
    let mut rng = StdRng::seed_from_u64(7);
    let inputs: Vec<u32> = (0..70).map(|_| rng.gen()).collect();
    for kernel in DespreadKernel::available() {
        for len in 0..=inputs.len() {
            let slice = &inputs[..len];
            let expect: Vec<Decision> = slice.iter().map(|&w| decide(w)).collect();
            let mut got = Vec::new();
            kernel.decide_into(slice, &mut got);
            assert_eq!(got, expect, "kernel {} len {len}", kernel.name());
        }
    }
}

/// The zero-copy lane decode equals a per-symbol extraction + decide.
#[test]
fn lane_decode_matches_extracted_codewords() {
    let mut rng = StdRng::seed_from_u64(21);
    for n_symbols in [0usize, 1, 2, 3, 17, 64, 65, 200] {
        let chips: Vec<bool> = (0..n_symbols * 32).map(|_| rng.gen()).collect();
        let packed = ChipWords::from_bools(&chips);
        let expect: Vec<Decision> = (0..n_symbols)
            .map(|s| decide(packed.extract_u32(s * 32)))
            .collect();
        let mut got = Vec::new();
        decide_lanes_into(packed.words(), n_symbols, &mut got);
        assert_eq!(got, expect, "n_symbols {n_symbols}");
    }
}

/// `decide_batch` (the active-kernel entry every despread call uses)
/// equals the scalar spec — whatever kernel detection picked, and
/// whether or not `PPR_NO_SIMD` pinned it to scalar.
#[test]
fn active_kernel_entry_matches_scalar() {
    let mut rng = StdRng::seed_from_u64(3);
    let inputs: Vec<u32> = (0..997).map(|_| rng.gen()).collect();
    let got = decide_batch(&inputs);
    for (i, &w) in inputs.iter().enumerate() {
        assert_eq!(got[i], decide(w), "word {i}");
    }
    assert!(DespreadKernel::available().contains(&DespreadKernel::active()));
}

proptest! {
    /// Kernel parity on arbitrary word vectors and lengths.
    #[test]
    fn kernels_match_scalar_arbitrary(
        words in proptest::collection::vec(any::<u32>(), 0..600),
    ) {
        let expect: Vec<Decision> = words.iter().map(|&w| decide(w)).collect();
        for kernel in DespreadKernel::available() {
            let mut got = Vec::new();
            kernel.decide_into(&words, &mut got);
            prop_assert_eq!(&got, &expect, "kernel {}", kernel.name());
        }
    }

    /// Lane-decode parity on arbitrary chip streams, including symbol
    /// counts that leave half a lane unused.
    #[test]
    fn lane_decode_matches_scalar_arbitrary(
        chips in proptest::collection::vec(any::<bool>(), 0..4096),
    ) {
        let n_symbols = chips.len() / 32;
        let packed = ChipWords::from_bools(&chips);
        let expect: Vec<Decision> = (0..n_symbols)
            .map(|s| decide(packed.extract_u32(s * 32)))
            .collect();
        let mut got = Vec::new();
        decide_lanes_into(packed.words(), n_symbols, &mut got);
        prop_assert_eq!(got, expect);
    }
}
