//! Property tests for PP-ARQ under adversity: the retry budget is a
//! hard bound, the backoff ladder is pure integer arithmetic (identical
//! on every worker/driver), and a fully-jammed link degrades to a clean
//! `Partial`/`Failed` outcome instead of looping.

use ppr::core::arq::{run_session, PpArqConfig};
use ppr::mac::{BackoffPolicy, DeliveryOutcome};
use ppr::sim::adversary::JammerSpec;
use ppr::sim::experiments::jam::{run_duty_point, JammedLinkChannel, JAM_PERIOD};
use ppr::sim::experiments::mesh::{run_mesh, MeshParams};
use proptest::prelude::*;

proptest! {
    /// No session — chunked or whole-frame, at any duty cycle — ever
    /// consumes more rounds than the policy allows.
    #[test]
    fn rounds_never_exceed_the_retry_bound(
        duty_tenths in 0u32..11,
        retries in 1u8..6,
        seed in 0u64..500,
    ) {
        let duty = duty_tenths as f64 / 10.0;
        let policy = BackoffPolicy {
            max_retries: retries,
            base_delay: 2 * JAM_PERIOD,
            multiplier_milli: 1500,
            jitter_span: 0,
        };
        let (pp, wf) = run_duty_point(duty, 3, seed, policy);
        prop_assert!(pp.rounds <= 3 * retries as usize, "{pp:?}");
        prop_assert!(wf.rounds <= 3 * retries as usize, "{wf:?}");
        prop_assert_eq!(pp.sessions, 3);
        prop_assert_eq!(pp.completed + pp.partial + pp.failed, 3);
        prop_assert_eq!(wf.completed + wf.partial + wf.failed, 3);
    }

    /// The backoff ladder is a pure function of (policy, round): no
    /// call order, repetition, or interleaving changes a delay, and a
    /// ≥×1.0 multiplier never shrinks it.
    #[test]
    fn backoff_schedule_is_pure_and_monotone(
        base in 1u64..1_000_000,
        multiplier_milli in 1000u64..4000,
        rounds in 1u8..12,
    ) {
        let p = BackoffPolicy {
            max_retries: rounds,
            base_delay: base,
            multiplier_milli,
            jitter_span: 0,
        };
        // Forward, backward, and repeated evaluation all agree.
        let forward: Vec<u64> = (0..rounds).map(|r| p.delay(r)).collect();
        let backward: Vec<u64> = (0..rounds).rev().map(|r| p.delay(r)).collect();
        prop_assert_eq!(
            &forward,
            &backward.into_iter().rev().collect::<Vec<_>>()
        );
        for w in forward.windows(2) {
            prop_assert!(w[1] >= w[0], "ladder shrank: {forward:?}");
        }
        prop_assert_eq!(forward[0], base);
        // Jitter is stateless: same identity, same delay, bounded span.
        let q = BackoffPolicy { jitter_span: 64, ..p };
        for r in 0..rounds {
            let a = q.delay_with_jitter(r, 0xC0FFEE);
            prop_assert_eq!(a, q.delay_with_jitter(r, 0xC0FFEE));
            prop_assert!(a >= q.delay(r) && a < q.delay(r) + 64);
        }
    }

    /// A link jammed wall to wall delivers nothing useful — and the
    /// session must end in a clean degraded outcome, never `Complete`,
    /// with the budget fully consumed and honored.
    #[test]
    fn fully_jammed_link_degrades_cleanly(
        retries in 1u8..5,
        seed in 0u64..200,
    ) {
        let policy = BackoffPolicy {
            max_retries: retries,
            base_delay: JAM_PERIOD,
            multiplier_milli: 2000,
            jitter_span: 0,
        };
        let mut channel = JammedLinkChannel::new(1.0, policy, seed);
        channel.start_session();
        let payload: Vec<u8> = (0..250u32).map(|i| (i ^ seed as u32) as u8).collect();
        let config = PpArqConfig {
            max_rounds: retries as usize,
            ..PpArqConfig::default()
        };
        let s = run_session(&payload, config, &mut channel);
        prop_assert!(!s.completed, "a wall-to-wall jam cannot complete");
        prop_assert!(s.rounds <= retries as usize);
        let delivered = s
            .final_payload
            .iter()
            .zip(&payload)
            .filter(|(a, b)| a == b)
            .count();
        let outcome =
            DeliveryOutcome::classify(false, s.rounds as u8, delivered, payload.len());
        prop_assert!(outcome.exhausted());
        prop_assert!(matches!(
            outcome,
            DeliveryOutcome::Partial { .. } | DeliveryOutcome::Failed { .. }
        ));
        prop_assert!(outcome.delivered_fraction() < 1.0);
    }

    /// The mesh driver's whole adversarial schedule — jam bursts, node
    /// faults, exponential ARQ backoff — is invariant to the decode
    /// worker count. Small meshes keep the 256-case run fast.
    #[test]
    fn jammed_mesh_schedule_is_worker_invariant(
        nodes in 40usize..100,
        seed in 0u64..50,
        workers in 2usize..5,
    ) {
        let mut params = MeshParams::benign(nodes, 10.0, seed, 6, 120);
        params.jammer = JammerSpec::Pulse { period: 16_384, duty: 0.3 };
        params.churn = 4.0;
        params.arq_retries = 4;
        params.arq_backoff_milli = 1500;
        let a = run_mesh(&params, Some(1));
        let b = run_mesh(&params, Some(workers));
        prop_assert_eq!(a, b);
    }
}
