//! Parity harness for the packed (`ChipWords`) fast path.
//!
//! The `&[bool]` chip APIs are the reference implementation; everything
//! here proves the packed representation produces **bit-identical**
//! chips and decisions across every stage of the pipeline — spreading,
//! corruption, sync, despreading, the per-packet receive path, and full
//! end-to-end experiment runs (sequential reference vs. packed parallel
//! loop) — under fixed seeds and proptest-generated inputs.

use ppr::channel::chip_channel::{
    corrupt_chip_words, corrupt_chip_words_in_place, corrupt_chips, ErrorProfile,
};
use ppr::mac::frame::Frame;
use ppr::mac::rx::FrameReceiver;
use ppr::mac::schemes::DeliveryScheme;
use ppr::phy::chips::ChipWords;
use ppr::phy::sync::SyncPattern;
use ppr::phy::ChipReceiver;
use ppr::sim::network::{
    generate_timeline, process_receptions, process_receptions_reference,
    process_receptions_with_workers, RadioEnv, RxArm, SimConfig,
};
use ppr::sim::FastRx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Spreading parity: the packed frame rendering equals the reference
/// `Vec<bool>` rendering chip for chip, across body sizes.
#[test]
fn spreading_parity() {
    for body_len in [0usize, 1, 20, 200, 1500] {
        let frame = Frame::new(2, 7, 42, vec![0xA5; body_len]);
        let reference = frame.chips();
        let packed = frame.chip_words();
        assert_eq!(packed.len(), reference.len(), "body {body_len}");
        assert_eq!(packed, ChipWords::from_bools(&reference), "body {body_len}");
    }
}

/// Corruption parity: packed and bool corruption flip exactly the same
/// chips for the same seed, in every error regime including spans that
/// straddle and overrun a truncated reception.
#[test]
fn corruption_parity_fixed_seeds() {
    let chips: Vec<bool> = (0..12_345).map(|i| i % 7 < 3).collect();
    let packed = ChipWords::from_bools(&chips);
    let profiles = [
        ErrorProfile::uniform(12_345, 0.0),
        ErrorProfile::uniform(12_345, 1e-6),
        ErrorProfile::uniform(12_345, 0.02),
        ErrorProfile::uniform(12_345, 0.3),
        ErrorProfile::uniform(12_345, 0.5),
        ErrorProfile::uniform(12_345, 0.95),
        ErrorProfile::uniform(20_000, 0.6), // overruns the reception
        ErrorProfile::from_pieces(vec![
            (0, 100, 0.0),
            (100, 163, 0.8), // dense span with unaligned edges
            (163, 5_000, 0.01),
            (5_000, 5_001, 0.7), // single-chip dense span
            (5_001, 13_000, 0.4),
            (13_000, 14_000, 0.9), // fully past the reception
        ]),
    ];
    for (pi, profile) in profiles.iter().enumerate() {
        for seed in 0..5u64 {
            let mut rng_a = StdRng::seed_from_u64(seed * 31 + 7);
            let mut rng_b = StdRng::seed_from_u64(seed * 31 + 7);
            let reference = corrupt_chips(&chips, profile, &mut rng_a);
            let fast = corrupt_chip_words(&packed, profile, &mut rng_b);
            assert_eq!(
                fast,
                ChipWords::from_bools(&reference),
                "profile {pi} seed {seed}"
            );
            // Both paths must also leave the RNG in the same state, or
            // parity would silently break for the *next* consumer.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "profile {pi}");
        }
    }
}

/// Geometric-sampler edge cases: sparse spans whose boundaries straddle
/// 64-chip lane edges, probabilities sitting exactly on the sparse/dense
/// crossover constants (`BLOCK_FLIP_MIN_P = 0.02` and `0.5`, where the
/// q = ln(1-p) skip math meets its boundary behavior), and spans whose
/// `hi` is clipped mid-lane by a truncated reception. Each case must
/// flip bit-identical chips *and* leave the RNG in the same state as
/// the `&[bool]` reference.
#[test]
fn corruption_parity_sampler_edge_cases() {
    // 3 lanes + a 37-chip partial lane: every boundary below is
    // deliberately off the 64-chip grid.
    let n_chips = 64 * 3 + 37;
    let chips: Vec<bool> = (0..n_chips).map(|i| i % 5 < 2).collect();
    let packed = ChipWords::from_bools(&chips);
    let profiles = [
        // Sparse spans straddling lane edges (63..65, 127..130) and one
        // ending exactly on an edge (start mid-lane, end = 192).
        ErrorProfile::from_pieces(vec![(63, 65, 0.005), (127, 130, 0.01), (150, 192, 0.015)]),
        // p exactly at the sparse/dense crossover constant.
        ErrorProfile::uniform(n_chips as u64, 0.02),
        // p exactly 0.5 — ln(1-p) boundary of the dense-side regimes.
        ErrorProfile::uniform(n_chips as u64, 0.5),
        // Single span overrunning the reception: hi clips to 229,
        // mid-way through the final partial lane.
        ErrorProfile::from_pieces(vec![(100, 10_000, 0.008)]),
        // Span entirely inside one lane (no word boundary crossed).
        ErrorProfile::from_pieces(vec![(70, 90, 0.012)]),
    ];
    for (pi, profile) in profiles.iter().enumerate() {
        for seed in 0..20u64 {
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let reference = corrupt_chips(&chips, profile, &mut rng_a);
            let fast = corrupt_chip_words(&packed, profile, &mut rng_b);
            assert_eq!(
                fast,
                ChipWords::from_bools(&reference),
                "profile {pi} seed {seed}"
            );
            assert_eq!(
                rng_a.gen::<u64>(),
                rng_b.gen::<u64>(),
                "RNG state diverged: profile {pi} seed {seed}"
            );
        }
    }
}

/// The in-place corruption entry point is bit-identical to the
/// allocating one (same flips, same RNG draws) — it is the same
/// algorithm minus the clone, and this pins that.
#[test]
fn corruption_in_place_matches_allocating() {
    let chips: Vec<bool> = (0..9_999).map(|i| i % 11 < 4).collect();
    let packed = ChipWords::from_bools(&chips);
    let profiles = [
        ErrorProfile::uniform(9_999, 0.01),
        ErrorProfile::uniform(9_999, 0.25),
        ErrorProfile::from_pieces(vec![
            (0, 63, 0.004),
            (63, 6_000, 0.6),
            (6_000, 12_000, 0.02),
        ]),
    ];
    for (pi, profile) in profiles.iter().enumerate() {
        for seed in 0..5u64 {
            let mut rng_a = StdRng::seed_from_u64(seed + 17);
            let mut rng_b = StdRng::seed_from_u64(seed + 17);
            let allocating = corrupt_chip_words(&packed, profile, &mut rng_a);
            let mut in_place = packed.clone();
            corrupt_chip_words_in_place(&mut in_place, profile, &mut rng_b);
            assert_eq!(allocating, in_place, "profile {pi} seed {seed}");
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "profile {pi}");
        }
    }
}

/// Sync parity: packed delimiter distance equals the reference at every
/// offset of a corrupted capture, including offsets straddling the end.
#[test]
fn sync_distance_parity() {
    let frame = Frame::new(1, 3, 5, vec![0x5C; 60]);
    let mut rng = StdRng::seed_from_u64(99);
    let profile = ErrorProfile::uniform(frame.chips_len() as u64, 0.08);
    let chips = corrupt_chips(&frame.chips(), &profile, &mut rng);
    let packed = ChipWords::from_bools(&chips);
    for pattern in [SyncPattern::preamble(), SyncPattern::postamble()] {
        for offset in (0..chips.len() + 150).step_by(13) {
            assert_eq!(
                pattern.distance_at(&chips, offset),
                pattern.distance_at_words(&packed, offset),
                "offset {offset}"
            );
        }
    }
}

/// Despreading parity: packed and reference despreading agree on whole
/// frames, unaligned offsets, and truncated captures.
#[test]
fn despreading_parity() {
    let frame = Frame::new(4, 8, 1, vec![0x99; 150]);
    let mut rng = StdRng::seed_from_u64(5);
    let profile = ErrorProfile::uniform(frame.chips_len() as u64, 0.05);
    let chips = corrupt_chips(&frame.chips(), &profile, &mut rng);
    let packed = ChipWords::from_bools(&chips);
    let rx = ChipReceiver::default();
    let n_symbols = frame.link_symbols();
    for (off, n) in [
        (320usize, n_symbols),
        (320 + 32, n_symbols),
        (321, 40),             // unaligned
        (chips.len() - 40, 8), // runs off the end
    ] {
        assert_eq!(
            rx.despread(&chips, off, n),
            rx.despread_words(&packed, off, n),
            "off {off} n {n}"
        );
    }
}

/// Receive-path parity: `FastRx::receive` and `receive_words` agree on
/// acquisition and decoded frames over seeded noisy captures, for both
/// postamble arms and both idle states.
#[test]
fn receive_path_parity() {
    let frame = Frame::new(3, 6, 2, vec![0x42; 250]);
    let clean = frame.chips();
    for seed in 0..6u64 {
        // Escalating error rates cover preamble-intact, preamble-lost,
        // and fully-lost captures.
        let p = [1e-6, 0.02, 0.08, 0.15, 0.3, 0.5][seed as usize % 6];
        let profile = ErrorProfile::uniform(clean.len() as u64, p);
        let mut rng = StdRng::seed_from_u64(seed);
        let chips = corrupt_chips(&clean, &profile, &mut rng);
        let packed = ChipWords::from_bools(&chips);
        for postamble in [false, true] {
            let fast = FastRx::new(postamble);
            for idle in [false, true] {
                let (acq_a, rx_a) = fast.receive(&frame, &chips, idle);
                let (acq_b, rx_b) = fast.receive_words(&frame, &packed, idle);
                assert_eq!(acq_a, acq_b, "seed {seed} p {p} idle {idle}");
                assert_eq!(rx_a, rx_b, "seed {seed} p {p} idle {idle}");
            }
        }
    }
}

/// Frame-receiver decode parity on a mid-frame wake-up (negative link
/// start, head padding) — the rollback geometry the postamble exists for.
#[test]
fn rollback_decode_parity() {
    let frame = Frame::new(4, 4, 2, vec![0x11; 80]);
    let full = frame.chips();
    let cut = 2 * full.len() / 3;
    let tail = full[cut..].to_vec();
    let packed = ChipWords::from_bools(&tail);
    let rx = FrameReceiver::default();
    let scan = rx.chip_receiver().scan(&tail);
    assert!(!scan.is_empty(), "postamble must be found");
    let hit = scan.last().unwrap();
    assert_eq!(
        rx.decode_from_postamble(&tail, hit.chip_offset),
        rx.decode_from_postamble_words(&packed, hit.chip_offset)
    );
}

/// End-to-end parity: the packed parallel reception loop produces the
/// exact `Reception` list of the sequential `&[bool]` reference, across
/// schemes and postamble arms (including symbol-trace collection).
#[test]
fn end_to_end_experiment_parity() {
    let env = RadioEnv::new(1);
    let cfg = SimConfig {
        load_kbps: 13.8,
        body_bytes: 200,
        carrier_sense: false,
        duration_s: 3.0,
        seed: 42,
    };
    let timeline = generate_timeline(&env, &cfg);
    assert!(!timeline.is_empty());
    let arms = [
        RxArm {
            scheme: DeliveryScheme::PacketCrc,
            postamble: false,
            collect_symbols: false,
        },
        RxArm {
            scheme: DeliveryScheme::Ppr { eta: 6 },
            postamble: true,
            collect_symbols: true,
        },
        RxArm {
            scheme: DeliveryScheme::FragmentedCrc { frag_payload: 50 },
            postamble: true,
            collect_symbols: false,
        },
    ];
    for arm in &arms {
        let reference = process_receptions_reference(&env, &cfg, &timeline, arm);
        let packed = process_receptions(&env, &cfg, &timeline, arm);
        assert_eq!(reference.len(), packed.len(), "{arm:?}");
        assert_eq!(reference, packed, "{arm:?}");
        // Force the scoped-thread fan-out on explicit worker counts —
        // on a single-core machine the default path would fall back to
        // the inline loop and leave the threaded branch untested.
        for workers in [2usize, 5] {
            let threaded =
                process_receptions_with_workers(&env, &cfg, &timeline, arm, Some(workers));
            assert_eq!(reference, threaded, "{arm:?} workers={workers}");
        }
    }
}

proptest! {
    /// Pack/unpack round-trip for arbitrary chip streams.
    #[test]
    fn chipwords_roundtrip(chips in proptest::collection::vec(any::<bool>(), 0..500)) {
        let packed = ChipWords::from_bools(&chips);
        prop_assert_eq!(packed.len(), chips.len());
        prop_assert_eq!(packed.to_bools(), chips);
    }

    /// Corruption parity over arbitrary piecewise profiles, stream
    /// lengths, and seeds — including truncated receptions where the
    /// profile overruns the chips.
    #[test]
    fn corruption_parity_arbitrary_profiles(
        seed in any::<u64>(),
        n_chips in 1usize..4000,
        pieces in proptest::collection::vec((0u64..200, 1u64..800, 0.0f64..1.0), 1..6),
    ) {
        // Build monotone, gap-free-ish spans from (gap, len, p) triples.
        let mut cursor = 0u64;
        let mut spans = Vec::new();
        for (gap, len, p) in pieces {
            let start = cursor + gap;
            spans.push((start, start + len, p));
            cursor = start + len;
        }
        let profile = ErrorProfile::from_pieces(spans);
        let chips: Vec<bool> = (0..n_chips).map(|i| i % 3 == 0).collect();
        let packed = ChipWords::from_bools(&chips);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let reference = corrupt_chips(&chips, &profile, &mut rng_a);
        let fast = corrupt_chip_words(&packed, &profile, &mut rng_b);
        prop_assert_eq!(fast, ChipWords::from_bools(&reference));
    }

    /// Sparse-sampler parity over arbitrary lane-straddling spans: all
    /// probabilities are kept strictly below the 0.02 crossover so the
    /// geometric skip path (not the mask path) is always the one under
    /// test, and stream lengths are drawn around 64-chip lane edges.
    #[test]
    fn corruption_parity_sparse_lane_straddles(
        seed in any::<u64>(),
        n_lanes in 1usize..8,
        tail in 0usize..64,
        pieces in proptest::collection::vec((0u64..130, 1u64..200, 0.0f64..0.02), 1..5),
    ) {
        let n_chips = n_lanes * 64 + tail;
        let mut cursor = 0u64;
        let mut spans = Vec::new();
        for (gap, len, p) in pieces {
            let start = cursor + gap;
            spans.push((start, start + len, p));
            cursor = start + len;
        }
        let profile = ErrorProfile::from_pieces(spans);
        let chips: Vec<bool> = (0..n_chips).map(|i| i % 2 == 0).collect();
        let packed = ChipWords::from_bools(&chips);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let reference = corrupt_chips(&chips, &profile, &mut rng_a);
        let fast = corrupt_chip_words(&packed, &profile, &mut rng_b);
        prop_assert_eq!(fast, ChipWords::from_bools(&reference));
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    /// Despreading parity at arbitrary offsets/lengths over random chips.
    #[test]
    fn despread_parity_arbitrary(
        chips in proptest::collection::vec(any::<bool>(), 64..2000),
        off in 0usize..2100,
        n in 0usize..70,
    ) {
        let packed = ChipWords::from_bools(&chips);
        let rx = ChipReceiver::default();
        prop_assert_eq!(
            rx.despread(&chips, off, n),
            rx.despread_words(&packed, off, n)
        );
    }
}
