//! Cross-crate integration: the full PPR story, phy → channel → mac →
//! core, on one simulated link.

use ppr::channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr::core::arq::{run_session, PpArqConfig};
use ppr::core::{PacketHints, PpArq};
use ppr::mac::frame::Frame;
use ppr::mac::rx::FrameReceiver;
use ppr::mac::schemes::{correct_delivered_bytes, DeliveryScheme};
use ppr::sim::experiments::fig16::RadioLinkChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 + 17) as u8).collect()
}

/// Frame → chips → bursty channel → receive → PPR delivery → PP-ARQ
/// plan, asserting each stage's contract.
#[test]
fn partial_recovery_over_a_collision() {
    let payload = test_payload(300);
    let frame = Frame::new(1, 2, 9, payload.clone());
    let chips = frame.chips();

    // Channel: clean except a jammed middle third (collision).
    let total = chips.len() as u64;
    let profile = ErrorProfile::from_pieces(vec![
        (0, total / 3, 1e-4),
        (total / 3, 2 * total / 3, 0.4),
        (2 * total / 3, total, 1e-4),
    ]);
    let mut rng = StdRng::seed_from_u64(55);
    let corrupted = corrupt_chips(&chips, &profile, &mut rng);

    // Receive via the sliding pipeline.
    let frames = FrameReceiver::default().receive(&corrupted);
    assert_eq!(frames.len(), 1);
    let rx = &frames[0];
    assert_eq!(rx.header, Some(frame.header), "geometry must survive");
    assert!(!rx.pkt_crc_ok(), "the burst must break the packet CRC");

    // PPR delivers the intact thirds; packet CRC delivers nothing.
    let ppr = DeliveryScheme::Ppr { eta: 6 };
    let delivered = ppr.deliver(rx);
    let correct = correct_delivered_bytes(&delivered, &payload);
    assert!(correct > 120, "PPR salvaged only {correct} bytes");
    assert_eq!(DeliveryScheme::PacketCrc.deliver(rx).len(), 0);

    // PP-ARQ plans a compact retransmission covering the burst.
    let hints = rx.body_byte_hints().unwrap();
    let plan = PpArq::new(PpArqConfig::default()).plan_feedback(&PacketHints::from_raw(&hints, 6));
    assert!(!plan.chunks.is_empty());
    let requested = plan.requested_units();
    assert!(
        requested < payload.len(),
        "plan requested the whole packet ({requested} bytes)"
    );
    // Every wrong byte is covered by some requested chunk OR will be
    // caught by the checksum pass (hint misses).
    let body = rx.body_bytes().unwrap();
    let mut uncovered_wrong = 0;
    for (i, (&b, &t)) in body.iter().zip(&payload).enumerate() {
        if b != t && hints[i] > 6 && !plan.chunks.iter().any(|c| c.covers(i)) {
            uncovered_wrong += 1;
        }
    }
    assert_eq!(
        uncovered_wrong, 0,
        "bad-labeled wrong bytes must be requested"
    );
}

/// The full lockstep protocol over the chip-level radio channel
/// recovers byte-exact payloads across many packets.
#[test]
fn pparq_transfers_are_byte_exact_over_radio() {
    let mut channel = RadioLinkChannel::marginal(777);
    let mut completed = 0;
    let n = 25;
    for i in 0..n {
        let payload = test_payload(200 + i);
        let stats = run_session(&payload, PpArqConfig::default(), &mut channel);
        if stats.completed {
            completed += 1;
            assert_eq!(stats.final_payload, payload, "packet {i} corrupted");
        }
    }
    assert!(completed * 10 >= n * 9, "only {completed}/{n} completed");
}

/// Postamble decoding rescues a preamble-less frame end to end, and the
/// delivered partial packet feeds PP-ARQ planning.
#[test]
fn postamble_rollback_feeds_pparq() {
    let payload = test_payload(150);
    let frame = Frame::new(3, 4, 1, payload.clone());
    let mut chips = frame.chips();
    let mut rng = StdRng::seed_from_u64(66);
    // Destroy preamble + header region.
    for c in chips.iter_mut().take(1200) {
        *c = rng.gen();
    }
    let frames = FrameReceiver::default().receive(&chips);
    assert_eq!(frames.len(), 1);
    let rx = &frames[0];
    assert_eq!(rx.sync, ppr::phy::SyncKind::Postamble);
    assert_eq!(
        rx.header,
        Some(frame.header),
        "trailer must supply geometry"
    );

    let hints = rx.body_byte_hints().unwrap();
    let plan = PpArq::new(PpArqConfig::default()).plan_feedback(&PacketHints::from_raw(&hints, 6));
    // The destroyed head must be requested; the intact tail must not.
    assert!(plan.chunks.iter().any(|c| c.covers(0) || c.start < 40));
    let tail_requested = plan.chunks.iter().any(|c| c.covers(140));
    assert!(
        !tail_requested,
        "intact tail was re-requested: {:?}",
        plan.chunks
    );
}
