//! Parity harness for the DSP SIMD kernels (`ppr_phy::simd::DspKernel`).
//!
//! The scalar reference paths — the superposition loop the sample-level
//! channel ran before vectorization, `MskModem::chip_soft_value`, and
//! `sova::decode_reference` — are the executable specifications. Every
//! vectorized tier (SSE3 `addsub` rotation, AVX2 gathered matched
//! filter, SSE four-lane SOVA trellis) must reproduce them
//! **bit-identically**: these are floating-point reductions, so the
//! kernels preserve the reference's operation order and shape, and this
//! suite pins that with `f32::to_bits` comparisons rather than
//! approximate equality. Kernels the CPU lacks are skipped by
//! construction (`DspKernel::available`); the CI Miri job re-runs the
//! fixed tests with `PPR_NO_SIMD=1`, which pins the *active* kernel to
//! scalar but leaves `available()` intact, so the loops below still
//! cover every tier the host offers.

use ppr::phy::pulse::HalfSine;
use ppr::phy::simd::DspKernel;
use ppr::phy::sova;
use ppr::phy::{Complex32, MskModem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn complexes(n: usize, rng: &mut StdRng) -> Vec<Complex32> {
    (0..n)
        .map(|_| Complex32 {
            re: rng.gen_range(-2.0f32..2.0),
            im: rng.gen_range(-2.0f32..2.0),
        })
        .collect()
}

fn bits_c(v: &[Complex32]) -> Vec<(u32, u32)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

fn bits_f(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The process-wide kernel is one detection can actually deliver.
#[test]
fn active_dsp_kernel_is_available() {
    assert!(DspKernel::available().contains(&DspKernel::active()));
}

/// Superposition parity on lengths straddling the 2-lane (SSE3) and
/// 4-lane (AVX2) complex chunk boundaries, accumulated over several
/// passes so rounding differences would compound and show.
#[test]
fn axpy_kernels_match_scalar_fixed() {
    let mut rng = StdRng::seed_from_u64(11);
    for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 257] {
        let wave = complexes(n, &mut rng);
        let rot = Complex32 {
            re: rng.gen_range(-1.0f32..1.0),
            im: rng.gen_range(-1.0f32..1.0),
        };
        let amp = rng.gen_range(0.1f32..2.0);
        let base = complexes(n, &mut rng);
        let mut expect = base.clone();
        for _ in 0..3 {
            DspKernel::Scalar.axpy_rotated(&mut expect, &wave, rot, amp);
        }
        for kernel in DspKernel::available() {
            let mut got = base.clone();
            for _ in 0..3 {
                kernel.axpy_rotated(&mut got, &wave, rot, amp);
            }
            assert_eq!(
                bits_c(&got),
                bits_c(&expect),
                "kernel {} n {n}",
                kernel.name()
            );
        }
    }
}

/// Matched-filter bank parity across chip counts straddling the 8-chip
/// AVX2 step, every rail phase, and sample-per-chip factors.
#[test]
fn demod_kernels_match_scalar_fixed() {
    let mut rng = StdRng::seed_from_u64(22);
    for sps in [1usize, 2, 4] {
        let pulse = HalfSine::new(sps);
        for n_chips in [0usize, 1, 7, 8, 9, 16, 33, 100] {
            for start in [0usize, 1, 5] {
                for first_chip_even in [false, true] {
                    let samples = complexes(start + n_chips * sps + pulse.len() + 3, &mut rng);
                    // Same full-window count the demodulator computes.
                    let full = if samples.len() >= start + pulse.len() {
                        ((samples.len() - start - pulse.len()) / sps + 1).min(n_chips)
                    } else {
                        0
                    };
                    let mut expect = Vec::new();
                    DspKernel::Scalar.demod_full_windows(
                        &samples,
                        pulse.samples(),
                        pulse.energy(),
                        start,
                        sps,
                        full,
                        first_chip_even,
                        &mut expect,
                    );
                    for kernel in DspKernel::available() {
                        let mut got = Vec::new();
                        kernel.demod_full_windows(
                            &samples,
                            pulse.samples(),
                            pulse.energy(),
                            start,
                            sps,
                            full,
                            first_chip_even,
                            &mut got,
                        );
                        assert_eq!(
                            bits_f(&got),
                            bits_f(&expect),
                            "kernel {} sps {sps} n {n_chips} start {start} even {first_chip_even}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }
}

/// The public demodulator (whatever kernel is active) equals the pinned
/// per-chip truncating reference `chip_soft_value` — including tail
/// chips whose correlation window runs off the capture.
#[test]
fn demodulate_matches_chip_soft_value_reference() {
    let mut rng = StdRng::seed_from_u64(33);
    for sps in [1usize, 2, 4] {
        let modem = MskModem::new(sps);
        for (n_chips, cut) in [(40usize, 0usize), (40, 3), (40, 2 * sps + 1), (9, 1)] {
            let total = modem.samples_for_chips(n_chips);
            let samples = complexes(total.saturating_sub(cut), &mut rng);
            for start in [0usize, 2] {
                for first_chip_even in [false, true] {
                    let got = modem.demodulate(&samples, start, n_chips, first_chip_even);
                    let expect: Vec<f32> = (0..n_chips)
                        .map(|k| {
                            let even = (k % 2 == 0) == first_chip_even;
                            modem.chip_soft_value(&samples, start + k * sps, even)
                        })
                        .collect();
                    assert_eq!(
                        bits_f(&got),
                        bits_f(&expect),
                        "sps {sps} n {n_chips} cut {cut} start {start}"
                    );
                }
            }
        }
    }
}

/// SOVA parity on noisy encoded streams: hard bits and reliabilities
/// bit-identical to `decode_reference` for every kernel tier, plus the
/// malformed-input rejections.
#[test]
fn sova_kernels_match_reference_fixed() {
    let mut rng = StdRng::seed_from_u64(44);
    for info_bits in [1usize, 2, 3, 10, 129, 500] {
        let bits: Vec<bool> = (0..info_bits).map(|_| rng.gen()).collect();
        let mut soft = sova::modulate_coded(&bits);
        for s in &mut soft {
            *s += rng.gen_range(-0.8f32..0.8);
        }
        let expect = sova::decode_reference(&soft).expect("well-formed stream");
        for kernel in DspKernel::available() {
            let got = kernel.sova_decode(&soft).expect("well-formed stream");
            assert_eq!(got, expect, "kernel {} info {info_bits}", kernel.name());
        }
    }
    for kernel in DspKernel::available() {
        assert!(kernel.sova_decode(&[]).is_none(), "{}", kernel.name());
        assert!(kernel.sova_decode(&[1.0]).is_none(), "{}", kernel.name());
        assert!(
            kernel.sova_decode(&[1.0, -1.0]).is_none(),
            "{}",
            kernel.name()
        );
        assert!(
            kernel.sova_decode(&[1.0, -1.0, 0.5]).is_none(),
            "{}",
            kernel.name()
        );
    }
}

proptest! {
    /// Superposition parity on arbitrary waveforms, rotations, gains
    /// and length mismatches (out shorter, equal, or longer than wave).
    #[test]
    fn axpy_kernels_match_scalar_arbitrary(
        wave in proptest::collection::vec((-4.0f32..4.0, -4.0f32..4.0), 0..300),
        out_len in 0usize..300,
        rot in (-2.0f32..2.0, -2.0f32..2.0),
        amp in 0.01f32..4.0,
        seed in any::<u64>(),
    ) {
        let wave: Vec<Complex32> = wave.iter().map(|&(re, im)| Complex32 { re, im }).collect();
        let rot = Complex32 { re: rot.0, im: rot.1 };
        let mut rng = StdRng::seed_from_u64(seed);
        let base = complexes(out_len, &mut rng);
        let mut expect = base.clone();
        DspKernel::Scalar.axpy_rotated(&mut expect, &wave, rot, amp);
        for kernel in DspKernel::available() {
            let mut got = base.clone();
            kernel.axpy_rotated(&mut got, &wave, rot, amp);
            prop_assert_eq!(bits_c(&got), bits_c(&expect), "kernel {}", kernel.name());
        }
    }

    /// Matched-filter parity on arbitrary geometry; `full` is derived
    /// with the demodulator's own formula so every window is in bounds.
    #[test]
    fn demod_kernels_match_scalar_arbitrary(
        sps in 1usize..5,
        n_chips in 0usize..80,
        start in 0usize..10,
        slack in 0usize..20,
        first_chip_even in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pulse = HalfSine::new(sps);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = complexes(start + n_chips * sps + slack, &mut rng);
        let full = if samples.len() >= start + pulse.len() {
            ((samples.len() - start - pulse.len()) / sps + 1).min(n_chips)
        } else {
            0
        };
        let mut expect = Vec::new();
        DspKernel::Scalar.demod_full_windows(
            &samples, pulse.samples(), pulse.energy(), start, sps, full,
            first_chip_even, &mut expect,
        );
        for kernel in DspKernel::available() {
            let mut got = Vec::new();
            kernel.demod_full_windows(
                &samples, pulse.samples(), pulse.energy(), start, sps, full,
                first_chip_even, &mut got,
            );
            prop_assert_eq!(bits_f(&got), bits_f(&expect), "kernel {}", kernel.name());
        }
    }

    /// SOVA parity on arbitrary matched-filter-scale soft streams (the
    /// documented |r| contract under which the vector kernel's dropped
    /// ±∞ guards are exact).
    #[test]
    fn sova_kernels_match_reference_arbitrary(
        pairs in proptest::collection::vec((-8.0f32..8.0, -8.0f32..8.0), 2..150),
    ) {
        let soft: Vec<f32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        let expect = sova::decode_reference(&soft);
        for kernel in DspKernel::available() {
            prop_assert_eq!(kernel.sova_decode(&soft), expect.clone(), "kernel {}", kernel.name());
        }
    }
}
