//! Event-core parity: the discrete-event drivers must be bit-identical
//! to the pinned time-stepped references, for every tuning knob.
//!
//! Three layers of the claim:
//!
//! 1. **Timeline** — [`generate_timeline`] (event queue) vs
//!    [`generate_timeline_reference`] (the original per-sender merge).
//! 2. **Reception loop** — [`process_receptions_tuned`] (event queue +
//!    batched fan-out) vs [`process_receptions_timestep`] (the original
//!    time-stepped loop), across worker counts *and* batch sizes: the
//!    [`Reception`] stream may depend on neither.
//! 3. **Experiments** — every registry entry renders the same report
//!    under `driver=event` and `driver=timestep`.
//!
//! Plus the spatial-index soundness property: the uniform grid's
//! candidate set is a superset of every link the propagation model can
//! still close at the noise floor.

use ppr::channel::pathloss::PathLossModel;
use ppr::mac::schemes::DeliveryScheme;
use ppr::sim::experiments::registry;
use ppr::sim::geometry::{Point, Testbed};
use ppr::sim::network::{
    generate_timeline, generate_timeline_reference, office_model, process_receptions_timestep,
    process_receptions_tuned, RadioEnv, RxArm, SimConfig,
};
use ppr::sim::scenario::{Driver, ScenarioBuilder};
use ppr::sim::spatial::SpatialIndex;
use proptest::prelude::*;

fn cfg(load_kbps: f64, seed: u64) -> SimConfig {
    SimConfig {
        load_kbps,
        body_bytes: 1500,
        carrier_sense: false,
        duration_s: 2.0,
        seed,
    }
}

#[test]
fn timeline_event_core_matches_reference() {
    for (load, cs, seed) in [(13.8, false, 1u64), (42.4, false, 2), (87.5, true, 3)] {
        let mut c = cfg(load, seed);
        c.carrier_sense = cs;
        let env = RadioEnv::new(c.seed);
        let a = generate_timeline(&env, &c);
        let b = generate_timeline_reference(&env, &c);
        assert_eq!(
            a, b,
            "timeline diverged at load {load}, cs {cs}, seed {seed}"
        );
    }
}

#[test]
fn reception_loop_is_invariant_to_workers_and_batch() {
    let c = cfg(42.4, 7);
    let env = RadioEnv::new(c.seed);
    let timeline = generate_timeline(&env, &c);
    assert!(!timeline.is_empty());
    let arm = RxArm {
        scheme: DeliveryScheme::Ppr { eta: 6 },
        postamble: true,
        collect_symbols: false,
    };

    let reference = process_receptions_timestep(&env, &c, &timeline, &arm, Some(1));
    assert!(!reference.is_empty());
    for workers in [1usize, 2, 4, 8] {
        for batch_per_worker in [1usize, 4, 8, 32] {
            let got = process_receptions_tuned(
                &env,
                &c,
                &timeline,
                &arm,
                Some(workers),
                batch_per_worker,
            );
            assert_eq!(
                got, reference,
                "event driver diverged at workers={workers}, batch={batch_per_worker}"
            );
        }
    }
    // And the time-stepped loop itself is worker-invariant.
    let ts4 = process_receptions_timestep(&env, &c, &timeline, &arm, Some(4));
    assert_eq!(ts4, reference);

    // workers=None resolves through PPR_THREADS / available parallelism
    // — a worker count no explicit ladder rung covers. The batch ladder
    // must be invariant under it too (this is the default every
    // experiment actually runs with).
    for batch_per_worker in [1usize, 8, 32] {
        let got = process_receptions_tuned(&env, &c, &timeline, &arm, None, batch_per_worker);
        assert_eq!(
            got, reference,
            "event driver diverged at workers=None, batch={batch_per_worker}"
        );
    }
    assert_eq!(
        process_receptions_timestep(&env, &c, &timeline, &arm, None),
        reference
    );
}

#[test]
fn mesh_resume_inside_a_flush_window_is_bit_identical() {
    // A mesh checkpoint may land *inside* the SAFE_WINDOW decode flush:
    // completed receptions are pending, their batch not yet decoded.
    // The snapshot serializes the pending batch verbatim (no forced
    // early flush), so the resumed run must reproduce the uninterrupted
    // stats exactly — including the flush-batch counters the report
    // prints.
    use ppr::sim::experiments::mesh::{run_mesh, MeshDriver, MeshParams};
    let params = MeshParams::benign(300, 12.0, 2, 6, 250);
    let reference = run_mesh(&params, Some(2));

    let mut driver = MeshDriver::new(&params, Some(1));
    let mut epochs_inside_flush = Vec::new();
    loop {
        let before = driver.dispatched();
        driver.run_events(before + 1);
        if driver.dispatched() == before {
            break; // drained
        }
        if !driver.save().pending.is_empty() {
            epochs_inside_flush.push(driver.dispatched());
        }
        if epochs_inside_flush.len() >= 24 {
            break;
        }
    }
    assert!(
        !epochs_inside_flush.is_empty(),
        "no epoch with a non-empty pending batch — SAFE_WINDOW flush never observed"
    );
    // Resume from an early, a middle and the last captured mid-flush
    // epoch, each across a worker-count change.
    let picks = [
        epochs_inside_flush[0],
        epochs_inside_flush[epochs_inside_flush.len() / 2],
        *epochs_inside_flush.last().unwrap(),
    ];
    for &events in &picks {
        let mut d = MeshDriver::new(&params, Some(1));
        d.run_events(events);
        let snap = d.save();
        assert!(!snap.pending.is_empty(), "picked epoch lost its batch");
        let resumed = MeshDriver::restore(&params, Some(4), &snap)
            .expect("mid-flush snapshot restores")
            .run_to_end();
        assert_eq!(resumed, reference, "mid-flush resume diverged at {events}");
    }
}

#[test]
fn every_experiment_is_driver_invariant() {
    // Short but complete pass over all 15 experiments under both
    // drivers. `mesh10k` has no time-stepped path (it exists only on
    // the event core) but runs under both scenario values all the same
    // — the driver axis must not leak into it.
    let build = |driver: Driver| {
        ScenarioBuilder::new()
            .duration_s(1.0)
            .seed(0xD21)
            .threads(1)
            .arq_packets(10)
            .relay_packets(15)
            .mesh_nodes(300)
            .driver(driver)
            .build()
    };
    let (sc_event, sc_timestep) = (build(Driver::Event), build(Driver::Timestep));

    let mut prior_e = Vec::new();
    let mut prior_t = Vec::new();
    for exp in registry() {
        let re = exp.run_with(&sc_event, &prior_e);
        let rt = exp.run_with(&sc_timestep, &prior_t);
        assert_eq!(
            re.render_text(),
            rt.render_text(),
            "driver changed the report of {}",
            exp.id()
        );
        prior_e.push(re);
        prior_t.push(rt);
    }
}

proptest! {
    /// Grid soundness: every pair the model can still close at the
    /// noise floor (mean rx power ≥ noise) is inside the 3×3 candidate
    /// neighborhood of both endpoints.
    #[test]
    fn spatial_candidates_cover_every_closable_link(
        seed in 0u64..1000,
        nodes in 2usize..80,
        density in 4.0f64..20.0,
    ) {
        let model = PathLossModel { shadow_sigma_db: 0.0, ..office_model() };
        let comm = model.range_at_snr_m(2.5);
        let tb = Testbed::mesh(seed, nodes, density, comm);
        let pts: &[Point] = &tb.senders;
        let index = SpatialIndex::build(pts, model.interference_radius_m());
        let noise = model.noise_mw();

        let mut cands: Vec<u32> = Vec::new();
        for (r, p) in pts.iter().enumerate() {
            cands.clear();
            index.candidates_into(p, &mut cands);
            // Deterministic: a second scan yields the same sequence.
            prop_assert_eq!(&cands, &index.candidates(p));
            for (s, q) in pts.iter().enumerate() {
                if s == r {
                    continue;
                }
                if model.rx_power_mw(p.distance(q), 0.0) >= noise {
                    prop_assert!(
                        cands.contains(&(s as u32)),
                        "node {} closes a link to {} but is not a candidate", s, r
                    );
                }
            }
        }
    }
}
