//! Regression tests for bugs found during development, plus pinned
//! decode outcomes that refactors must not silently change.

use ppr::channel::chip_channel::{corrupt_chips, ErrorProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Acquisition outcomes of the reception pipeline under a fixed seed,
/// pinned exactly (counts *and* an order-sensitive fingerprint over
/// every reception's acquisition, delivery and CRC verdict). The packed
/// chip representation and the parallel reception loop of PR 2 must not
/// change a single decode decision — and neither may any future
/// refactor, on any worker count.
#[test]
fn rxpath_acquisition_outcomes_are_pinned() {
    use ppr::mac::schemes::DeliveryScheme;
    use ppr::sim::network::{generate_timeline, process_receptions, RadioEnv, RxArm, SimConfig};
    use ppr::sim::Acquisition;

    let env = RadioEnv::new(1);
    let cfg = SimConfig {
        load_kbps: 13.8,
        body_bytes: 200,
        carrier_sense: false,
        duration_s: 3.0,
        seed: 42,
    };
    let timeline = generate_timeline(&env, &cfg);

    // (postamble arm, receptions, via-preamble, via-postamble, lost,
    //  FNV-1a fingerprint)
    let pinned = [
        (
            false,
            1001usize,
            622usize,
            0usize,
            379usize,
            0xdaf8_c347_f764_3c7f_u64,
        ),
        (true, 1001, 622, 267, 112, 0x657a_b023_e99a_dc2e),
    ];
    for (postamble, n, pre, post, none, fingerprint) in pinned {
        let arm = RxArm {
            scheme: DeliveryScheme::Ppr { eta: 6 },
            postamble,
            collect_symbols: false,
        };
        let recs = process_receptions(&env, &cfg, &timeline, &arm);
        let count = |want: Acquisition| recs.iter().filter(|r| r.acquisition == want).count();
        assert_eq!(recs.len(), n, "postamble={postamble}");
        assert_eq!(count(Acquisition::Preamble), pre, "postamble={postamble}");
        assert_eq!(count(Acquisition::Postamble), post, "postamble={postamble}");
        assert_eq!(count(Acquisition::None), none, "postamble={postamble}");

        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &recs {
            let code = match r.acquisition {
                Acquisition::Preamble => 1u64,
                Acquisition::Postamble => 2,
                Acquisition::None => 3,
            };
            for v in [
                r.tx_id,
                r.receiver as u64,
                code,
                r.delivered_correct as u64,
                r.crc_ok as u64,
            ] {
                fp ^= v;
                fp = fp.wrapping_mul(0x100_0000_01b3);
            }
        }
        assert_eq!(
            fp, fingerprint,
            "postamble={postamble}: decode decisions drifted"
        );
    }
}

/// `corrupt_chips` once looped forever when a span's error probability
/// was positive but below 2⁻⁵³: `ln(1 − p)` rounded to 0 and the
/// geometric skip never advanced. Strong-but-imperfect links (SNR
/// roughly 15–26 dB) produce exactly such probabilities.
#[test]
fn tiny_error_probability_terminates() {
    let mut rng = StdRng::seed_from_u64(1);
    let chips = vec![true; 200_000];
    for p in [1e-300, 1e-30, 1e-17, 1e-13, 1e-12, 1e-9] {
        let profile = ErrorProfile::uniform(chips.len() as u64, p);
        let out = corrupt_chips(&chips, &profile, &mut rng);
        assert_eq!(out.len(), chips.len(), "p = {p}");
        // At these probabilities no flip is statistically expected.
        let flips = out.iter().zip(&chips).filter(|(a, b)| a != b).count();
        assert!(flips <= 2, "p = {p}: {flips} flips");
    }
}

/// The moderate regime still flips chips at the right rate after the
/// small-p guard (guard must not eat real error rates).
#[test]
fn moderate_error_probability_unaffected_by_guard() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 100_000usize;
    let chips = vec![false; n];
    let p = 1e-3;
    let profile = ErrorProfile::uniform(n as u64, p);
    let mut total = 0usize;
    for _ in 0..10 {
        let out = corrupt_chips(&chips, &profile, &mut rng);
        total += out.iter().filter(|&&c| c).count();
    }
    let rate = total as f64 / (10 * n) as f64;
    assert!((rate - p).abs() < 2e-4, "rate {rate} vs {p}");
}

/// Two frames whose link sections begin at the same chip offset (e.g.
/// two senders keying up simultaneously) were once deduplicated into
/// one: the postamble-synced view of the second frame was dropped
/// because the first frame's preamble view "claimed" the shared start
/// chip. The dedup key must include the frame length.
#[test]
fn same_start_frames_are_not_deduplicated() {
    use ppr::mac::frame::Frame;
    use ppr::mac::rx::FrameReceiver;
    use ppr::phy::SyncKind;

    let long = Frame::new(1, 10, 0, vec![0xAA; 200]);
    let short = Frame::new(9, 12, 0, vec![0xBB; 20]);
    // Render both frames keying up at the same instant over the DSP
    // channel, so their link sections share a start chip.
    use ppr::channel::sample_channel::{render, WaveformTx};
    use ppr::phy::modem::MskModem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let modem = MskModem::new(4);
    let mut rng = StdRng::seed_from_u64(3);
    let txs = vec![
        WaveformTx {
            chips: long.chips(),
            start_sample: 0,
            power_mw: 1.0,
            phase: 0.0,
        },
        WaveformTx {
            chips: short.chips(),
            start_sample: 0,
            power_mw: 6.0,
            phase: 0.1,
        },
    ];
    let duration = (long.chips().len() + 64) * 4;
    let samples = render(&modem, &txs, duration, 0.01, &mut rng);
    let chips = modem.demodulate_hard(&samples, 0, samples.len() / 4, true);
    let frames = FrameReceiver::default().receive(&chips);
    // The strong short frame wins the preamble; the long frame's tail
    // (clean after the short one ends) must still be recovered via its
    // postamble as a distinct frame.
    let short_rx = frames
        .iter()
        .find(|f| f.header.map(|h| h.src == 12).unwrap_or(false));
    let long_rx = frames
        .iter()
        .find(|f| f.header.map(|h| h.src == 10).unwrap_or(false));
    assert!(short_rx.is_some(), "strong frame lost");
    let long_rx = long_rx.expect("long frame must be recovered via postamble");
    assert_eq!(long_rx.sync, SyncKind::Postamble);
}
