//! A miniature run of the 27-node testbed: the paper's intro workload.
//!
//! 23 senders broadcast 1500-byte packets at high offered load with
//! carrier sense off; four receivers catch what they can. Prints the
//! per-link frame delivery picture for the status quo (packet CRC) vs
//! PPR, with and without postamble decoding — Fig. 10 in miniature.
//!
//! ```text
//! cargo run --release --example mesh_broadcast
//! ```

use ppr::mac::schemes::DeliveryScheme;
use ppr::sim::experiments::common::{fdr_cdf, per_link_stats, CapacityRun};
use ppr::sim::network::RxArm;
use ppr::sim::rxpath::Acquisition;

fn main() {
    println!("building testbed and 12 s of 13.8 kbit/s/node traffic...");
    let run = CapacityRun::new(13.8, false, 12.0);
    println!(
        "{} transmissions over {} usable links ({} senders, {} receivers)\n",
        run.timeline.len(),
        run.env.links().len(),
        run.env.testbed.senders.len(),
        run.env.testbed.receivers.len(),
    );

    for (label, scheme, postamble) in [
        (
            "status quo: packet CRC, no postamble",
            DeliveryScheme::PacketCrc,
            false,
        ),
        ("packet CRC + postamble", DeliveryScheme::PacketCrc, true),
        (
            "PPR (eta=6), no postamble",
            DeliveryScheme::Ppr { eta: 6 },
            false,
        ),
        (
            "PPR (eta=6) + postamble",
            DeliveryScheme::Ppr { eta: 6 },
            true,
        ),
    ] {
        let arm = RxArm {
            scheme,
            postamble,
            collect_symbols: false,
        };
        let recs = run.receptions(&arm);
        let cdf = fdr_cdf(&run.env, &recs, run.cfg.body_bytes);
        let stats = per_link_stats(&run.env, &recs);
        let (mut pre, mut post, mut lost) = (0usize, 0usize, 0usize);
        for r in &recs {
            match r.acquisition {
                Acquisition::Preamble => pre += 1,
                Acquisition::Postamble => post += 1,
                Acquisition::None => lost += 1,
            }
        }
        println!("{label}");
        println!(
            "  median per-link FDR {:.3}  (p25 {:.3}, p75 {:.3}) over {} links",
            cdf.median(),
            cdf.quantile(0.25),
            cdf.quantile(0.75),
            stats.iter().filter(|(_, s)| s.frames > 0).count(),
        );
        println!("  acquisitions: {pre} preamble, {post} postamble, {lost} lost\n");
    }
    println!(
        "Expect: PPR+postamble far above the status quo, postamble adding\n\
         acquisitions for both schemes (paper Figs. 8-10)."
    );
}
