//! Quickstart: the whole PPR story on one corrupted frame.
//!
//! 1. Build an 802.15.4 frame and spread it to chips.
//! 2. Corrupt a burst of chips (a collision).
//! 3. Receive it: SoftPHY hints flag exactly the corrupted region.
//! 4. Compare what each delivery scheme salvages.
//! 5. Let PP-ARQ plan the cheapest partial retransmission.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ppr::core::{PacketHints, PpArq, PpArqConfig};
use ppr::mac::frame::Frame;
use ppr::mac::rx::FrameReceiver;
use ppr::mac::schemes::{correct_delivered_bytes, DeliveryScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A 200-byte payload framed for the air: preamble · header ·
    //    body · CRC-32 · trailer · postamble.
    let payload: Vec<u8> = (0..200u32).map(|i| (i * 37 + 11) as u8).collect();
    let frame = Frame::new(
        /*dst*/ 1,
        /*src*/ 2,
        /*seq*/ 0,
        payload.clone(),
    );
    let mut chips = frame.chips();
    println!(
        "frame: {} link bytes -> {} chips ({} us airtime)",
        frame.link_bytes().len(),
        chips.len(),
        frame.airtime_us()
    );

    // 2. A collision wipes out ~25% of the frame mid-flight.
    let burst_start = chips.len() / 2;
    let burst_len = chips.len() / 4;
    for c in chips[burst_start..burst_start + burst_len].iter_mut() {
        *c = rng.gen();
    }
    println!(
        "collision: randomized chips {burst_start}..{}",
        burst_start + burst_len
    );

    // 3. Receive. The Hamming-distance SoftPHY hints light up over the
    //    burst and stay near zero elsewhere.
    let frames = FrameReceiver::default().receive(&chips);
    let rx = &frames[0];
    println!(
        "\nsync: {:?}, header: {:?}, packet CRC ok: {}",
        rx.sync,
        rx.header,
        rx.pkt_crc_ok()
    );
    let hints = rx.body_byte_hints().expect("geometry known");
    let bad: usize = hints.iter().filter(|&&h| h > 6).count();
    println!(
        "SoftPHY: {bad} of {} body bytes labeled bad (eta = 6)",
        hints.len()
    );

    // 4. What does each scheme deliver from this single reception?
    println!(
        "\nscheme comparison (correct bytes delivered of {}):",
        payload.len()
    );
    for scheme in [
        DeliveryScheme::PacketCrc,
        DeliveryScheme::FragmentedCrc { frag_payload: 50 },
        DeliveryScheme::Ppr { eta: 6 },
    ] {
        // Fragmented CRC needs its own frame layout; rebuild under the
        // same corruption pattern for a fair comparison.
        let sframe = Frame::new(1, 2, 0, scheme.build_body(&payload));
        let mut schips = sframe.chips();
        let mut r2 = StdRng::seed_from_u64(7);
        let bs = schips.len() / 2;
        let bl = schips.len() / 4;
        for c in schips[bs..bs + bl].iter_mut() {
            *c = r2.gen();
        }
        let rxs = FrameReceiver::default().receive(&schips);
        let delivered = rxs
            .first()
            .map(|f| correct_delivered_bytes(&scheme.deliver(f), &payload))
            .unwrap_or(0);
        println!("  {:<16} {delivered:>4} bytes", scheme.name());
    }

    // 5. PP-ARQ plans the cheapest retransmission request from the
    //    hints: one chunk covering the burst, not the whole packet.
    let plan = PpArq::new(PpArqConfig::default()).plan_feedback(&PacketHints::from_raw(&hints, 6));
    println!(
        "\nPP-ARQ plan: {} chunk(s), {:.0} feedback bits, {} bytes re-requested",
        plan.chunks.len(),
        plan.cost_bits,
        plan.requested_units()
    );
    for c in &plan.chunks {
        println!("  re-send bytes {}..{}", c.start, c.end);
    }
    println!(
        "(a whole-packet retransmit would resend {} bytes)",
        payload.len()
    );
}
