//! Postamble rollback over the real DSP channel.
//!
//! Two packets collide at a software receiver (the paper's Fig. 5 / 13
//! scenario): a strong latecomer buries the first packet's middle, and a
//! short early burst has already destroyed its preamble. The status-quo
//! receiver gets nothing from packet 1; the PPR receiver catches its
//! **postamble**, rolls back through the sample buffer, and recovers the
//! intact parts — with SoftPHY hints marking exactly the buried region.
//!
//! ```text
//! cargo run --release --example collision_recovery
//! ```

use ppr::channel::sample_channel::{render, WaveformTx};
use ppr::mac::frame::Frame;
use ppr::mac::rx::{FrameReceiver, RxConfig};
use ppr::phy::modem::MskModem;
use ppr::phy::sync::SyncKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sps = 4;
    let modem = MskModem::new(sps);
    let mut rng = StdRng::seed_from_u64(99);

    let victim = Frame::new(1, 10, 0, (0..200u32).map(|i| (i * 13) as u8).collect());
    let collider = Frame::new(1, 11, 0, vec![0x5A; 80]);
    let jammer = Frame::new(9, 12, 0, vec![0xFF; 16]);

    let victim_chips = victim.chips();
    let collider_start = (victim_chips.len() as f64 * 0.45) as usize;

    let txs = vec![
        WaveformTx {
            chips: victim_chips.clone(),
            start_sample: 0,
            power_mw: 1.0,
            phase: 0.0,
        },
        WaveformTx {
            chips: collider.chips(),
            start_sample: collider_start * sps,
            power_mw: 6.0,
            phase: 0.1,
        },
        // The jammer burst covers the victim's preamble.
        WaveformTx {
            chips: jammer.chips(),
            start_sample: 0,
            power_mw: 2.0,
            phase: 0.2,
        },
    ];
    let duration = (victim_chips.len() + 100) * sps;
    let samples = render(&modem, &txs, duration, 0.02, &mut rng);
    println!(
        "rendered {} complex samples ({} transmissions superposed + AWGN)",
        samples.len(),
        txs.len()
    );

    // Demodulate the continuous capture and run both receiver arms.
    let chips = modem.demodulate_hard(&samples, 0, samples.len() / sps, true);

    for postamble in [false, true] {
        let receiver = FrameReceiver::new(RxConfig {
            postamble_decoding: postamble,
            max_body_len: 2048,
        });
        let frames = receiver.receive(&chips);
        let victim_rx = frames
            .iter()
            .find(|f| f.header.map(|h| h.src == 10).unwrap_or(false));
        println!(
            "\n--- postamble decoding {} ---",
            if postamble { "ON" } else { "OFF" }
        );
        match victim_rx {
            None => println!("victim packet: NOT RECOVERED (preamble was destroyed)"),
            Some(f) => {
                let hints = f.body_byte_hints().unwrap();
                let good = hints.iter().filter(|&&h| h <= 6).count();
                println!("victim packet: recovered via {:?}", f.sync);
                assert_eq!(f.sync, SyncKind::Postamble);
                println!(
                    "  {} of {} body bytes labeled good; CRC ok: {}",
                    good,
                    hints.len(),
                    f.pkt_crc_ok()
                );
                let body = f.body_bytes().unwrap();
                let truth: Vec<u8> = (0..200u32).map(|i| (i * 13) as u8).collect();
                let good_and_correct = body
                    .iter()
                    .zip(&truth)
                    .zip(&hints)
                    .filter(|((b, t), h)| **h <= 6 && b == t)
                    .count();
                println!("  good-labeled bytes that are actually correct: {good_and_correct}");
            }
        }
        // The strong collider is received either way.
        let collider_rx = frames
            .iter()
            .find(|f| f.header.map(|h| h.src == 11).unwrap_or(false));
        match collider_rx {
            Some(f) => println!(
                "collider packet: received via {:?}, CRC ok: {}",
                f.sync,
                f.pkt_crc_ok()
            ),
            None => println!("collider packet: lost"),
        }
    }
}
