//! Learning the SoftPHY threshold online (§3.3).
//!
//! The SoftPHY contract hides how hints are computed; a link layer must
//! not hard-code η = 6. This example shows `AdaptiveThreshold` learning
//! a threshold from ground truth it can actually observe — PP-ARQ's
//! checksum verdicts — under two different PHY hint behaviors:
//!
//! 1. the real Hamming-distance hint from the DSSS receiver, and
//! 2. a rescaled hint (same ordering, different units) that would break
//!    any layer that assumed Hamming semantics.
//!
//! ```text
//! cargo run --release --example adaptive_threshold
//! ```

use ppr::channel::chip_channel::{corrupt_chips, ErrorProfile};
use ppr::core::AdaptiveThreshold;
use ppr::mac::frame::Frame;
use ppr::mac::rx::FrameReceiver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(33);

    for (name, rescale) in [("raw Hamming hints", false), ("rescaled hints (x2)", true)] {
        // The estimator knows nothing but the monotonicity contract.
        let mut t = AdaptiveThreshold::new(64, 12, 0.02);

        for pkt in 0..80 {
            let payload: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
            let frame = Frame::new(1, 2, pkt, payload.clone());
            let chips = frame.chips();
            let total = chips.len() as u64;
            // A burst collision over a random span of every packet.
            let len = rng.gen_range(total / 10..total / 3);
            let start = rng.gen_range(0..total - len);
            let profile = ErrorProfile::from_pieces(vec![
                (0, start, 2e-3),
                (start, start + len, 0.35),
                (start + len, total, 2e-3),
            ]);
            let corrupted = corrupt_chips(&chips, &profile, &mut rng);
            let frames = FrameReceiver::default().receive(&corrupted);
            let Some(rx) = frames.first() else { continue };
            let (Some(body), Some(hints)) = (rx.body_bytes(), rx.body_byte_hints()) else {
                continue;
            };
            // Ground truth a real deployment gets from the ARQ checksum
            // pass; here we use the known payload directly.
            for ((b, truth), h) in body.iter().zip(&payload).zip(&hints) {
                let hint = if rescale { h.saturating_mul(2) } else { *h };
                t.observe(hint, b == truth);
            }
        }
        println!(
            "{name}: learned eta = {} after {} observations \
             (miss rate at eta: {:.4})",
            t.eta(),
            t.samples(),
            t.miss_rate_at(t.eta()),
        );
    }
    println!(
        "\nExpected: the rescaled PHY learns roughly twice the threshold —\n\
         the layer adapted to the hint scale without knowing it (3.3)."
    );
}
