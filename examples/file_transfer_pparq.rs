//! PP-ARQ moving a file across a marginal, bursty radio link.
//!
//! Splits a 16 KiB "file" into 250-byte packets and transfers each with
//! the full PP-ARQ protocol over the chip-level channel: every data
//! frame, feedback packet and partial retransmission is spread to chips,
//! corrupted, and decoded with SoftPHY hints. Compares the airtime spent
//! against the status quo (whole-packet retransmission until CRC
//! passes).
//!
//! ```text
//! cargo run --release --example file_transfer_pparq
//! ```

use ppr::core::arq::{run_session, ArqChannel, PpArqConfig};
use ppr::sim::experiments::fig16::RadioLinkChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let packet_bytes = 250usize;
    let file_len = 16 * 1024;
    let mut rng = StdRng::seed_from_u64(2024);
    let file: Vec<u8> = (0..file_len).map(|_| rng.gen()).collect();
    let packets: Vec<&[u8]> = file.chunks(packet_bytes).collect();
    println!(
        "transferring {} bytes as {} packets of {} B over a marginal bursty link\n",
        file_len,
        packets.len(),
        packet_bytes
    );

    // --- PP-ARQ ---
    let mut channel = RadioLinkChannel::marginal(42);
    let mut sender_bytes = 0usize;
    let mut feedback_bytes = 0usize;
    let mut rounds = 0usize;
    let mut recovered = 0usize;
    let mut retx_count = 0usize;
    for p in &packets {
        let stats = run_session(p, PpArqConfig::default(), &mut channel);
        sender_bytes += stats.sender_bytes();
        feedback_bytes += stats.receiver_bytes();
        rounds += stats.rounds;
        retx_count += stats.retx_sizes.len();
        if stats.completed && stats.final_payload == *p {
            recovered += 1;
        }
    }
    println!("PP-ARQ:");
    println!("  packets recovered:   {recovered}/{}", packets.len());
    println!(
        "  sender airtime:      {sender_bytes} bytes ({} retransmissions)",
        retx_count
    );
    println!("  feedback airtime:    {feedback_bytes} bytes");
    println!(
        "  mean rounds/packet:  {:.2}",
        rounds as f64 / packets.len() as f64
    );
    let pparq_total = sender_bytes;

    // --- Status quo: resend the whole packet until its CRC passes ---
    let mut channel = RadioLinkChannel::marginal(43);
    let mut naive_bytes = 0usize;
    let mut naive_recovered = 0usize;
    for p in &packets {
        let mut tries = 0;
        loop {
            tries += 1;
            let mut tx = p.to_vec();
            ppr::mac::crc::append_crc32(&mut tx);
            naive_bytes += tx.len();
            let (rx, _hints) = channel.forward(&tx);
            if rx.len() == tx.len() && ppr::mac::crc::verify_crc32_trailer(&rx) {
                naive_recovered += 1;
                break;
            }
            if tries >= 20 {
                break;
            }
        }
    }
    println!("\nstatus quo (whole-packet ARQ):");
    println!("  packets recovered:   {naive_recovered}/{}", packets.len());
    println!("  sender airtime:      {naive_bytes} bytes");
    println!(
        "\nPP-ARQ sender airtime saving vs status quo: {:.0}%",
        100.0 * (1.0 - pparq_total as f64 / naive_bytes as f64)
    );
    println!("(paper 7.5: a median factor of ~50% reduction in retransmission cost)");
}
