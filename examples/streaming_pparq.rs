//! Streaming-ACK PP-ARQ (§5.2): windowed transfers with concatenated
//! bursts vs lockstep single-packet sessions.
//!
//! The paper: "This process continues, with multiple forward-link data
//! packets and reverse-link feedback packets being concatenated together
//! in each transmission, to save per-packet overhead." This example
//! transfers the same packet batch both ways over the same bursty
//! channel statistics and compares exchanges and airtime.
//!
//! ```text
//! cargo run --release --example streaming_pparq
//! ```

use ppr::core::arq::{run_session, ArqChannel, PpArqConfig};
use ppr::core::stream::run_stream_session;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A byte-level bursty channel: each forward pass suffers a corruption
/// burst with some probability (honest hints attached).
struct ByteBursty {
    rng: StdRng,
}

impl ArqChannel for ByteBursty {
    fn forward(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let mut out = bytes.to_vec();
        let mut hints = vec![0u8; bytes.len()];
        if self.rng.gen::<f64>() < 0.6 && out.len() > 40 {
            let len = self.rng.gen_range(10..out.len() / 2);
            let start = self.rng.gen_range(0..out.len() - len);
            for i in start..start + len {
                out[i] ^= 0x96;
                hints[i] = 20;
            }
        }
        (out, hints)
    }
    fn reverse(&mut self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        (bytes.to_vec(), vec![0; bytes.len()])
    }
}

fn main() {
    let n_packets = 24;
    let packet_len = 250;
    let payloads: Vec<Vec<u8>> = (0..n_packets)
        .map(|i| {
            (0..packet_len)
                .map(|j| ((i * 251 + j * 13) % 256) as u8)
                .collect()
        })
        .collect();

    // Streaming: window of 6, bursts concatenated.
    let mut ch = ByteBursty {
        rng: StdRng::seed_from_u64(1),
    };
    let stream = run_stream_session(&payloads, 6, PpArqConfig::default(), &mut ch, 200);
    println!("streaming PP-ARQ (window 6):");
    println!("  delivered:      {}/{n_packets}", stream.completed.len());
    println!("  exchanges:      {}", stream.exchanges);
    println!("  forward bytes:  {}", stream.forward_bytes);
    println!("  reverse bytes:  {}", stream.reverse_bytes);
    for (i, p) in payloads.iter().enumerate() {
        if let Some(got) = stream.payloads.get(&(i as u16)) {
            assert_eq!(got, p, "packet {i} corrupted");
        }
    }

    // Lockstep: one session per packet over the same channel statistics.
    let mut ch = ByteBursty {
        rng: StdRng::seed_from_u64(1),
    };
    let mut exchanges = 0usize;
    let mut forward = 0usize;
    let mut reverse = 0usize;
    let mut delivered = 0usize;
    for p in &payloads {
        let s = run_session(p, PpArqConfig::default(), &mut ch);
        exchanges += 1 + s.rounds;
        forward += s.sender_bytes();
        reverse += s.receiver_bytes();
        if s.completed && s.final_payload == *p {
            delivered += 1;
        }
    }
    println!("\nlockstep PP-ARQ (one packet per session):");
    println!("  delivered:      {delivered}/{n_packets}");
    println!("  exchanges:      {exchanges}");
    println!("  forward bytes:  {forward}");
    println!("  reverse bytes:  {reverse}");

    println!(
        "\nstreaming used {:.1}x fewer exchanges ({} vs {})",
        exchanges as f64 / stream.exchanges as f64,
        stream.exchanges,
        exchanges
    );
}
