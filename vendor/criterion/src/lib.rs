//! Offline vendored subset of the `criterion` API.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the slice of criterion the workspace's benches use: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: a short warm-up, then timed
//! batches until ~100 ms have elapsed, reporting the mean ns/iteration
//! to stdout. No statistics, plots, or baselines — enough for coarse
//! before/after comparisons in this offline environment.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(100);
/// Wall-clock spent warming up before measuring.
const WARMUP_TARGET: Duration = Duration::from_millis(20);

/// Runs closures under a timer; handed to `bench_function` callbacks.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly, timing it, until the measurement budget is
    /// spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
        }
        // Timed batches of geometrically growing size.
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE_TARGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.total += t0.elapsed();
            self.iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }
}

/// Identifies one benchmark within a group, e.g. a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<48} (no iterations)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    println!("{label:<48} {ns:>14.1} ns/iter  ({} iters)", b.iters);
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
