//! Offline vendored subset of the `proptest` API.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`arbitrary::any`], range/tuple/collection
//! strategies, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros.
//!
//! Semantics: each test body runs against 256 accepted random cases
//! (rejections via `prop_assume!` don't count, up to an attempt cap).
//! Failures panic immediately **without shrinking** — simpler than
//! real proptest — but the runner prints the failing case's generated
//! inputs (`name = value, ...`) to stderr before propagating the
//! panic, so logs identify the offending case.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and the primitive strategy types.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Floats support half-open ranges only (the vendored `rand` has no
    // inclusive float sampling).
    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A collection size specification: `n`, `a..b`, or `a..=b`
    /// (mirrors proptest's `SizeRange`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` — see [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` — see [`crate::collection::btree_set`].
    pub struct BTreeSetStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // The element domain may hold fewer than `target` distinct
            // values, so cap the insert attempts.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly from the type's whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for a `BTreeSet` with up to `size` elements drawn from
    /// `element` (fewer if the element domain is too small).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Minimal runner state shared by the [`crate::proptest!`] expansion.

    /// Marker error produced by `prop_assume!` when a case is rejected.
    #[derive(Debug)]
    pub struct Rejected;

    /// Number of accepted cases each property runs against.
    pub const CASES: u32 = 256;

    /// Cap on total attempts (accepted + rejected) per property.
    pub const MAX_ATTEMPTS: u32 = CASES * 64;

    /// Stable per-test seed derived from the test's name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against many random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::test_runner::seed_for(stringify!($name)),
                );
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < $crate::test_runner::CASES
                    && attempts < $crate::test_runner::MAX_ATTEMPTS
                {
                    attempts += 1;
                    $(let $arg = ($strat).generate(&mut rng);)+
                    // Render the case up front so a panicking body can
                    // still report which inputs it was handed.
                    let case_desc = ::std::vec![
                        $(::std::format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ]
                    .join(", ");
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => accepted += 1,
                        Ok(Err($crate::test_runner::Rejected)) => {}
                        Err(payload) => {
                            eprintln!(
                                "proptest case {} failed with inputs: {}",
                                attempts, case_desc,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "property {} rejected all {} generated cases via prop_assume!",
                    stringify!($name),
                    attempts,
                );
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case unless the condition holds; rejected cases
/// don't count toward the accepted-case target.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_collections(
            x in 3u32..17,
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set(0u32..8, 0..=4),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() <= 4);
        }

        #[test]
        fn assume_rejects(parity in 0u8..4) {
            prop_assume!(parity % 2 == 0);
            prop_assert_eq!(parity % 2, 0);
        }
    }
}
