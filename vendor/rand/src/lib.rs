//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the small slice of `rand` the workspace actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`]
//! and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic generator. It intentionally does **not**
//! match upstream `StdRng`'s (ChaCha12) output stream; all callers in
//! this workspace only rely on determinism for a fixed seed, not on a
//! specific stream.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the `rand`
/// `Standard` distribution: full integer range, `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // 128-bit multiply-shift (Lemire) without the rejection
                // step; residual bias is <= span/2^64 — negligible for
                // the small ranges this workspace draws.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen before subtracting: the span of a signed range
                // can exceed the narrow type's MAX.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the `Standard` distribution (full range for
    /// integers and `bool`, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`. Panics if the range is
    /// empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as StandardSample>::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention rand 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generator types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `StdRng` this is not cryptographically strong —
    /// every use in this workspace is simulation, not secrets.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's internal state words — the xoshiro256++
        /// stream position. Together with [`StdRng::from_state`] this
        /// makes the generator checkpointable: simulator snapshots
        /// persist the exact stream position and resume bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`StdRng::state`]. The all-zero state is a
        /// fixed point of xoshiro256++ and can never be produced by
        /// seeding, so it is rejected by nudging to the seeding-path
        /// fallback state (matching `from_seed`).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u8> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.gen()).collect()
        };
        let b: Vec<u8> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=8u64);
            assert!((1..=8).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
